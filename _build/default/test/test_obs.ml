(* Tests for the obsolescence machinery: ids, bitvectors, annotations,
   encoders (item tagging, enumeration, k-enumeration, batches). *)

module Msg_id = Svs_obs.Msg_id
module Bitvec = Svs_obs.Bitvec
module Annotation = Svs_obs.Annotation
module Kenum_stream = Svs_obs.Kenum_stream
module Enum_builder = Svs_obs.Enum_builder
module Batch_encoder = Svs_obs.Batch_encoder

let mid sender sn = Msg_id.make ~sender ~sn

(* --- Msg_id --- *)

let test_msg_id_order () =
  Alcotest.(check bool) "precedes same sender" true (Msg_id.precedes (mid 1 2) (mid 1 5));
  Alcotest.(check bool) "no precedes across senders" false (Msg_id.precedes (mid 1 2) (mid 2 5));
  Alcotest.(check bool) "no precedes self" false (Msg_id.precedes (mid 1 2) (mid 1 2));
  Alcotest.(check bool) "compare lexicographic" true (Msg_id.compare (mid 1 9) (mid 2 0) < 0)

(* --- Bitvec --- *)

let test_bitvec_set_get () =
  let b = Bitvec.create ~k:100 in
  Alcotest.(check bool) "empty" true (Bitvec.is_empty b);
  Bitvec.set b 1;
  Bitvec.set b 62;
  Bitvec.set b 63;
  Bitvec.set b 100;
  Alcotest.(check bool) "bit 1" true (Bitvec.get b 1);
  Alcotest.(check bool) "word boundary 62" true (Bitvec.get b 62);
  Alcotest.(check bool) "word boundary 63" true (Bitvec.get b 63);
  Alcotest.(check bool) "bit 100" true (Bitvec.get b 100);
  Alcotest.(check bool) "unset" false (Bitvec.get b 50);
  Alcotest.(check (list int)) "distances" [ 1; 62; 63; 100 ] (Bitvec.distances b)

let test_bitvec_overflow_dropped () =
  let b = Bitvec.create ~k:10 in
  Bitvec.set b 11;
  Alcotest.(check bool) "beyond k silently dropped" true (Bitvec.is_empty b);
  Alcotest.(check bool) "get out of range" false (Bitvec.get b 11);
  Alcotest.check_raises "distance 0 invalid" (Invalid_argument "Bitvec.set: distance must be >= 1")
    (fun () -> Bitvec.set b 0)

let test_bitvec_or_shifted () =
  let src = Bitvec.create ~k:100 in
  Bitvec.set src 2;
  Bitvec.set src 61;
  let into = Bitvec.create ~k:100 in
  Bitvec.or_shifted ~into src ~shift:5;
  Alcotest.(check (list int)) "shifted" [ 7; 66 ] (Bitvec.distances into);
  (* shifting past k drops *)
  let into2 = Bitvec.create ~k:100 in
  Bitvec.or_shifted ~into:into2 src ~shift:50;
  Alcotest.(check (list int)) "partial overflow" [ 52 ] (Bitvec.distances into2)

let test_bitvec_union_equal_copy () =
  let a = Bitvec.create ~k:20 in
  Bitvec.set a 3;
  let b = Bitvec.create ~k:20 in
  Bitvec.set b 15;
  Bitvec.union ~into:a b;
  Alcotest.(check (list int)) "union" [ 3; 15 ] (Bitvec.distances a);
  let c = Bitvec.copy a in
  Alcotest.(check bool) "copy equal" true (Bitvec.equal a c);
  Bitvec.set c 1;
  Alcotest.(check bool) "copy independent" false (Bitvec.equal a c);
  Alcotest.(check int) "cardinal" 3 (Bitvec.cardinal c)

let bitvec_shift_matches_naive =
  QCheck.Test.make ~name:"or_shifted matches naive per-bit shift" ~count:300
    QCheck.(triple (list_of_size Gen.(int_range 0 20) (int_range 1 150)) (int_range 0 80) (int_range 1 150))
    (fun (bits, shift, k) ->
      let src = Bitvec.create ~k in
      List.iter (fun d -> if d <= k then Bitvec.set src d) bits;
      let into = Bitvec.create ~k in
      Bitvec.or_shifted ~into src ~shift;
      let expected = Bitvec.create ~k in
      List.iter (fun d -> if d <= k && d + shift <= k then Bitvec.set expected (d + shift)) bits;
      Bitvec.equal into expected)

(* --- Annotation semantics --- *)

let test_tag_relation () =
  let older = (mid 0 1, Annotation.Tag 7) in
  let newer = (mid 0 5, Annotation.Tag 7) in
  Alcotest.(check bool) "same tag obsoletes" true (Annotation.obsoletes ~older ~newer);
  Alcotest.(check bool) "reverse does not" false (Annotation.obsoletes ~older:newer ~newer:older);
  Alcotest.(check bool) "different tags unrelated" false
    (Annotation.obsoletes ~older ~newer:(mid 0 5, Annotation.Tag 8));
  Alcotest.(check bool) "different senders unrelated" false
    (Annotation.obsoletes ~older ~newer:(mid 1 5, Annotation.Tag 7))

let test_enum_relation () =
  let older = (mid 0 1, Annotation.Unrelated) in
  let newer = (mid 2 9, Annotation.Enum [ mid 0 1; mid 1 4 ]) in
  Alcotest.(check bool) "enumerated" true (Annotation.obsoletes ~older ~newer);
  Alcotest.(check bool) "not enumerated" false
    (Annotation.obsoletes ~older:(mid 0 2, Annotation.Unrelated) ~newer);
  (* Same-sender enumeration must respect sequence order. *)
  let bogus = (mid 2 10, Annotation.Unrelated) in
  Alcotest.(check bool) "cannot obsolete own future" false
    (Annotation.obsoletes ~older:bogus ~newer:(mid 2 9, Annotation.Enum [ mid 2 10 ]))

let test_kenum_relation () =
  let bm = Bitvec.create ~k:10 in
  Bitvec.set bm 3;
  let newer = (mid 1 20, Annotation.Kenum bm) in
  Alcotest.(check bool) "distance 3" true
    (Annotation.obsoletes ~older:(mid 1 17, Annotation.Unrelated) ~newer);
  Alcotest.(check bool) "distance 2 unset" false
    (Annotation.obsoletes ~older:(mid 1 18, Annotation.Unrelated) ~newer);
  Alcotest.(check bool) "other sender" false
    (Annotation.obsoletes ~older:(mid 2 17, Annotation.Unrelated) ~newer)

let test_covers_reflexive () =
  let m = (mid 3 3, Annotation.Tag 1) in
  Alcotest.(check bool) "covers self" true (Annotation.covers ~older:m ~newer:m);
  Alcotest.(check bool) "does not obsolete self" false (Annotation.obsoletes ~older:m ~newer:m)

let annotation_antisymmetric =
  QCheck.Test.make ~name:"encoded relation is antisymmetric" ~count:500
    QCheck.(quad (int_bound 3) (int_bound 30) (int_bound 3) (int_bound 30))
    (fun (s1, n1, s2, n2) ->
      let bm = Bitvec.create ~k:10 in
      Bitvec.set bm ((n1 mod 10) + 1);
      let a = (mid s1 n1, Annotation.Kenum bm) in
      let bm2 = Bitvec.create ~k:10 in
      Bitvec.set bm2 ((n2 mod 10) + 1);
      let b = (mid s2 n2, Annotation.Kenum bm2) in
      not (Annotation.obsoletes ~older:a ~newer:b && Annotation.obsoletes ~older:b ~newer:a))

(* --- Kenum_stream --- *)

let test_kenum_stream_transitive_composition () =
  let s = Kenum_stream.create ~k:10 () in
  (* m0, m1 obsoletes m0 (distance 1), m2 obsoletes m1 (distance 1). *)
  let _bm0 = Kenum_stream.push s ~direct:[] in
  let _bm1 = Kenum_stream.push s ~direct:[ 1 ] in
  let bm2 = Kenum_stream.push s ~direct:[ 1 ] in
  (* bm2 must cover both m1 (distance 1) and m0 (distance 2). *)
  Alcotest.(check (list int)) "transitive bits" [ 1; 2 ] (Bitvec.distances bm2);
  let newer = (mid 0 2, Annotation.Kenum bm2) in
  Alcotest.(check bool) "covers m0 transitively" true
    (Annotation.obsoletes ~older:(mid 0 0, Annotation.Unrelated) ~newer)

let test_kenum_stream_window_truncation () =
  let s = Kenum_stream.create ~k:3 () in
  for _ = 1 to 5 do
    ignore (Kenum_stream.push s ~direct:[])
  done;
  (* Distance 4 exceeds k=3: silently dropped. *)
  let bm = Kenum_stream.push s ~direct:[ 4 ] in
  Alcotest.(check bool) "dropped" true (Bitvec.is_empty bm)

let test_kenum_stream_push_preds () =
  let s = Kenum_stream.create ~k:10 () in
  ignore (Kenum_stream.push s ~direct:[]);
  ignore (Kenum_stream.push s ~direct:[]);
  let bm = Kenum_stream.push_preds s ~preds:[ 0 ] in
  Alcotest.(check (list int)) "pred 0 at distance 2" [ 2 ] (Bitvec.distances bm)

let test_kenum_stream_long_chain_stays_transitive () =
  (* A hot item updated every step: message n obsoletes n-1; bitmap of
     message n must cover all of the last k predecessors. *)
  let k = 16 in
  let s = Kenum_stream.create ~k () in
  ignore (Kenum_stream.push s ~direct:[]);
  let last = ref (Bitvec.create ~k) in
  for _ = 1 to 40 do
    last := Kenum_stream.push s ~direct:[ 1 ]
  done;
  Alcotest.(check (list int)) "all window distances covered" (List.init k (fun i -> i + 1))
    (Bitvec.distances !last)

(* --- Enum_builder --- *)

let test_enum_builder_transitive () =
  let b = Enum_builder.create ~window:10 () in
  let m0 = mid 0 0 and m1 = mid 0 1 and m2 = mid 0 2 in
  let e0 = Enum_builder.next b ~id:m0 ~direct:[] in
  Alcotest.(check int) "first has no preds" 0 (List.length e0);
  let _e1 = Enum_builder.next b ~id:m1 ~direct:[ m0 ] in
  let e2 = Enum_builder.next b ~id:m2 ~direct:[ m1 ] in
  Alcotest.(check bool) "m2 covers m0 transitively" true (List.exists (Msg_id.equal m0) e2);
  Alcotest.(check bool) "m2 covers m1" true (List.exists (Msg_id.equal m1) e2)

let test_enum_builder_cross_sender () =
  let b = Enum_builder.create ~window:10 () in
  let a = mid 1 0 and c = mid 2 0 in
  ignore (Enum_builder.next b ~id:a ~direct:[]);
  let e = Enum_builder.next b ~id:c ~direct:[ a ] in
  Alcotest.(check bool) "cross-sender enumeration" true (List.exists (Msg_id.equal a) e)

let test_enum_builder_window_eviction () =
  let b = Enum_builder.create ~window:2 () in
  let ids = List.init 5 (mid 0) in
  let rec chain prev = function
    | [] -> []
    | id :: rest ->
        let e = Enum_builder.next b ~id ~direct:(match prev with None -> [] | Some p -> [ p ]) in
        e :: chain (Some id) rest
  in
  let enums = chain None ids in
  let last = List.nth enums 4 in
  Alcotest.(check bool) "window bounds enumeration size" true (List.length last <= 2)

let test_enum_builder_rejects_self () =
  let b = Enum_builder.create ~window:4 () in
  Alcotest.check_raises "self-obsolescence rejected"
    (Invalid_argument "Enum_builder.next: a message cannot obsolete itself") (fun () ->
      ignore (Enum_builder.next b ~id:(mid 0 0) ~direct:[ mid 0 0 ]))

(* --- Batch_encoder (Figure 2 semantics) --- *)

let ann_of e = Batch_encoder.annotation e

let covers_msg ~(older : Batch_encoder.emitted) ~(newer : Batch_encoder.emitted) =
  Annotation.obsoletes
    ~older:(mid 9 older.Batch_encoder.sn, ann_of older)
    ~newer:(mid 9 newer.Batch_encoder.sn, ann_of newer)

let test_batch_figure2_scenario () =
  (* Figure 2: batch {a,b} then batch {b,c}. C(2) — not U(b,2) — makes
     U(b,1) obsolete. *)
  let enc = Batch_encoder.create ~k:16 () in
  let batch1 = Batch_encoder.encode enc ~items:[ 1; 2 ] in
  let batch2 = Batch_encoder.encode enc ~items:[ 2; 3 ] in
  let u_a1 = List.nth batch1 0 in
  let c1 = List.nth batch1 1 in
  let u_b2 = List.nth batch2 0 in
  let c2 = List.nth batch2 1 in
  Alcotest.(check bool) "first of batch1 is pure update" false u_a1.Batch_encoder.commit;
  Alcotest.(check bool) "last of batch1 is commit" true c1.Batch_encoder.commit;
  (* u_b2 (pure update of item 2 in batch 2) must NOT obsolete anything. *)
  Alcotest.(check bool) "pure update obsoletes nothing" true
    (Bitvec.is_empty u_b2.Batch_encoder.bitmap);
  (* c2 obsoletes u_b1 = the pure update of item 2... but in batch1 item 2
     rode the commit, so it is only coverable via the subset rule, which
     does not apply ({1,2} ⊄ {2,3}). Check the documented behaviour. *)
  Alcotest.(check bool) "c2 does not cover c1 (not a subset)" false
    (covers_msg ~older:c1 ~newer:c2)

let test_batch_pure_update_covered () =
  (* batch {a, b} then batch {a, c}: the pure update U(a,1) is covered
     by C(2) because item a reappears. *)
  let enc = Batch_encoder.create ~k:16 () in
  let batch1 = Batch_encoder.encode enc ~items:[ 1; 2 ] in
  let batch2 = Batch_encoder.encode enc ~items:[ 1; 3 ] in
  let u_a1 = List.nth batch1 0 in
  let c2 = List.nth batch2 1 in
  Alcotest.(check bool) "U(a,1) covered by C(2)" true (covers_msg ~older:u_a1 ~newer:c2)

let test_batch_subset_commit_covered () =
  (* batch {a} then batch {a, b}: commit C{a} is covered by C{a,b}. *)
  let enc = Batch_encoder.create ~k:16 () in
  let b1 = Batch_encoder.encode enc ~items:[ 1 ] in
  let b2 = Batch_encoder.encode enc ~items:[ 1; 2 ] in
  let c1 = List.nth b1 0 in
  let c2 = List.nth b2 1 in
  Alcotest.(check int) "single-item batch is one message" 1 (List.length b1);
  Alcotest.(check bool) "subset commit covered" true (covers_msg ~older:c1 ~newer:c2)

let test_batch_single_item_chain () =
  (* Single-item batches to the same item chain transitively. *)
  let enc = Batch_encoder.create ~k:16 () in
  let m1 = List.hd (Batch_encoder.encode enc ~items:[ 5 ]) in
  let _m2 = List.hd (Batch_encoder.encode enc ~items:[ 5 ]) in
  let m3 = List.hd (Batch_encoder.encode enc ~items:[ 5 ]) in
  Alcotest.(check bool) "chain start covered transitively" true
    (covers_msg ~older:m1 ~newer:m3)

let test_batch_separate_commit () =
  let enc = Batch_encoder.create ~k:16 ~separate_commit:true () in
  let b1 = Batch_encoder.encode enc ~items:[ 1; 2 ] in
  Alcotest.(check int) "n updates + dedicated commit" 3 (List.length b1);
  let commit = List.nth b1 2 in
  Alcotest.(check bool) "commit has no item" true (commit.Batch_encoder.item = None);
  (* With a separate commit every per-item update is coverable. *)
  let b2 = Batch_encoder.encode enc ~items:[ 2 ] in
  let u_b1 = List.nth b1 1 in
  let c2 = List.nth b2 1 in
  Alcotest.(check bool) "U(b,1) covered by next batch commit" true
    (covers_msg ~older:u_b1 ~newer:c2)

let test_batch_rejects_bad_input () =
  let enc = Batch_encoder.create ~k:8 () in
  Alcotest.check_raises "empty" (Invalid_argument "Batch_encoder.encode: empty batch")
    (fun () -> ignore (Batch_encoder.encode enc ~items:[]));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Batch_encoder.encode: duplicate items in batch") (fun () ->
      ignore (Batch_encoder.encode enc ~items:[ 1; 1 ]))

(* Property: the encoded relation from random batch streams is
   transitive within the window (chains that fit in k compose). *)
let batch_encoding_transitive =
  QCheck.Test.make ~name:"batch k-enum encoding is transitively closed in-window" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 30) (int_range 1 4)))
    (fun (seed, sizes) ->
      let rng = Svs_sim.Rng.create ~seed in
      let k = 64 in
      let enc = Batch_encoder.create ~k () in
      let all = ref [] in
      List.iter
        (fun size ->
          let items =
            List.sort_uniq compare (List.init size (fun _ -> Svs_sim.Rng.int rng 6))
          in
          let msgs = Batch_encoder.encode enc ~items in
          all := !all @ List.map (fun e -> (mid 0 e.Batch_encoder.sn, ann_of e)) msgs)
        sizes;
      let msgs = Array.of_list !all in
      let n = Array.length msgs in
      let obsoletes i j = Annotation.obsoletes ~older:msgs.(i) ~newer:msgs.(j) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          for l = j + 1 to n - 1 do
            let dist_il = (fst msgs.(l)).Msg_id.sn - (fst msgs.(i)).Msg_id.sn in
            if obsoletes i j && obsoletes j l && dist_il <= k && not (obsoletes i l) then
              ok := false
          done
        done
      done;
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_obs"
    [
      ("msg_id", [ Alcotest.test_case "ordering" `Quick test_msg_id_order ]);
      ( "bitvec",
        [
          Alcotest.test_case "set/get" `Quick test_bitvec_set_get;
          Alcotest.test_case "overflow dropped" `Quick test_bitvec_overflow_dropped;
          Alcotest.test_case "or_shifted" `Quick test_bitvec_or_shifted;
          Alcotest.test_case "union/equal/copy" `Quick test_bitvec_union_equal_copy;
          q bitvec_shift_matches_naive;
        ] );
      ( "annotation",
        [
          Alcotest.test_case "item tagging" `Quick test_tag_relation;
          Alcotest.test_case "enumeration" `Quick test_enum_relation;
          Alcotest.test_case "k-enumeration" `Quick test_kenum_relation;
          Alcotest.test_case "covers reflexive" `Quick test_covers_reflexive;
          q annotation_antisymmetric;
        ] );
      ( "kenum-stream",
        [
          Alcotest.test_case "transitive composition" `Quick test_kenum_stream_transitive_composition;
          Alcotest.test_case "window truncation" `Quick test_kenum_stream_window_truncation;
          Alcotest.test_case "push_preds" `Quick test_kenum_stream_push_preds;
          Alcotest.test_case "hot-item chain" `Quick test_kenum_stream_long_chain_stays_transitive;
        ] );
      ( "enum-builder",
        [
          Alcotest.test_case "transitive closure" `Quick test_enum_builder_transitive;
          Alcotest.test_case "cross-sender" `Quick test_enum_builder_cross_sender;
          Alcotest.test_case "window eviction" `Quick test_enum_builder_window_eviction;
          Alcotest.test_case "rejects self" `Quick test_enum_builder_rejects_self;
        ] );
      ( "batch-encoder",
        [
          Alcotest.test_case "figure 2 scenario" `Quick test_batch_figure2_scenario;
          Alcotest.test_case "pure update covered" `Quick test_batch_pure_update_covered;
          Alcotest.test_case "subset commit" `Quick test_batch_subset_commit_covered;
          Alcotest.test_case "single-item chain" `Quick test_batch_single_item_chain;
          Alcotest.test_case "separate commit" `Quick test_batch_separate_commit;
          Alcotest.test_case "input validation" `Quick test_batch_rejects_bad_input;
          q batch_encoding_transitive;
        ] );
    ]
