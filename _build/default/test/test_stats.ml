(* Tests for svs_stats: summaries, histograms, timelines, series. *)

module Summary = Svs_stats.Summary
module Histogram = Svs_stats.Histogram
module Timeline = Svs_stats.Timeline
module Series = Svs_stats.Series

(* --- Summary --- *)

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Summary.total s);
  (* sample variance of this classic data set is 32/7 *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Summary.variance s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Summary.variance s))

let test_summary_single () =
  let s = Summary.create () in
  Summary.add s 3.0;
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Summary.mean s);
  Alcotest.(check bool) "variance nan with one obs" true (Float.is_nan (Summary.variance s))

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () and whole = Summary.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Summary.add a) xs;
  List.iter (Summary.add b) ys;
  List.iter (Summary.add whole) (xs @ ys);
  let m = Summary.merge a b in
  Alcotest.(check int) "count" (Summary.count whole) (Summary.count m);
  Alcotest.(check (float 1e-9)) "mean" (Summary.mean whole) (Summary.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Summary.variance whole) (Summary.variance m);
  Alcotest.(check (float 1e-9)) "min" (Summary.min whole) (Summary.min m);
  Alcotest.(check (float 1e-9)) "max" (Summary.max whole) (Summary.max m)

let summary_matches_naive =
  QCheck.Test.make ~name:"summary mean/var match naive computation" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      Float.abs (Summary.mean s -. mean) < 1e-6
      && (Float.abs (Summary.variance s -. var) < 1e-4 *. Float.max 1.0 var))

(* --- Histogram --- *)

let test_histogram_counts () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 2; 2; 3; 3; 3 ];
  Alcotest.(check int) "total" 6 (Histogram.count h);
  Alcotest.(check int) "bucket 3" 3 (Histogram.bucket_count h 3);
  Alcotest.(check int) "bucket missing" 0 (Histogram.bucket_count h 9);
  Alcotest.(check (list (pair int int))) "buckets" [ (1, 1); (2, 2); (3, 3) ] (Histogram.buckets h)

let test_histogram_fractions () =
  let h = Histogram.create () in
  Histogram.add_many h 0 50;
  Histogram.add_many h 10 50;
  Alcotest.(check (float 1e-9)) "fraction" 0.5 (Histogram.fraction h 0);
  Alcotest.(check (float 1e-9)) "cumulative at 0" 0.5 (Histogram.fraction_le h 0);
  Alcotest.(check (float 1e-9)) "cumulative at 10" 1.0 (Histogram.fraction_le h 10);
  Alcotest.(check (float 1e-9)) "cumulative below" 0.0 (Histogram.fraction_le h (-1))

let test_histogram_percentile () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h i
  done;
  Alcotest.(check int) "p50" 50 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p99" 99 (Histogram.percentile h 99.0);
  Alcotest.(check int) "p100" 100 (Histogram.percentile h 100.0)

let test_histogram_mean_minmax () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 2; 4; 6 ];
  Alcotest.(check (float 1e-9)) "mean" 4.0 (Histogram.mean h);
  Alcotest.(check (option int)) "min" (Some 2) (Histogram.min_bucket h);
  Alcotest.(check (option int)) "max" (Some 6) (Histogram.max_bucket h)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check (option int)) "min" None (Histogram.min_bucket h);
  Alcotest.check_raises "percentile on empty"
    (Invalid_argument "Histogram.percentile: empty histogram") (fun () ->
      ignore (Histogram.percentile h 50.0))

(* --- Timeline --- *)

let test_timeline_mean () =
  let tl = Timeline.create () in
  (* value 0 on [0,1), 10 on [1,3), 20 on [3,4) *)
  Timeline.set tl ~time:1.0 10.0;
  Timeline.set tl ~time:3.0 20.0;
  Timeline.finish tl ~time:4.0;
  Alcotest.(check (float 1e-9)) "duration" 4.0 (Timeline.duration tl);
  Alcotest.(check (float 1e-9)) "time-weighted mean" ((0.0 +. 20.0 +. 20.0) /. 4.0)
    (Timeline.mean tl);
  Alcotest.(check (float 1e-9)) "max" 20.0 (Timeline.max_value tl)

let test_timeline_fraction_at () =
  let tl = Timeline.create ~value:1.0 () in
  Timeline.set tl ~time:2.0 0.0;
  Timeline.set tl ~time:3.0 1.0;
  Timeline.finish tl ~time:5.0;
  Alcotest.(check (float 1e-9)) "time at 1" 4.0 (Timeline.time_at tl (fun v -> v = 1.0));
  Alcotest.(check (float 1e-9)) "fraction at 1" 0.8 (Timeline.fraction_at tl (fun v -> v = 1.0))

let test_timeline_monotonic () =
  let tl = Timeline.create () in
  Timeline.set tl ~time:2.0 1.0;
  Alcotest.check_raises "non-monotonic set"
    (Invalid_argument "Timeline: non-monotonic time 1 < 2") (fun () ->
      Timeline.set tl ~time:1.0 2.0)

let test_timeline_zero_span_segments () =
  let tl = Timeline.create () in
  Timeline.set tl ~time:0.0 5.0;
  Timeline.set tl ~time:0.0 7.0;
  Timeline.finish tl ~time:2.0;
  Alcotest.(check (float 1e-9)) "only final value counts" 7.0 (Timeline.mean tl)

(* --- Series --- *)

let test_series_lookup_and_map () =
  let s = Series.make ~label:"a" [ (1.0, 10.0); (2.0, 20.0) ] in
  Alcotest.(check (option (float 1e-9))) "lookup" (Some 20.0) (Series.y_at s 2.0);
  Alcotest.(check (option (float 1e-9))) "missing" None (Series.y_at s 3.0);
  let doubled = Series.map_y (fun y -> 2.0 *. y) s in
  Alcotest.(check (option (float 1e-9))) "mapped" (Some 40.0) (Series.y_at doubled 2.0)

let test_series_of_histogram () =
  let h = Histogram.create () in
  Histogram.add_many h 1 75;
  Histogram.add_many h 2 25;
  let s = Series.of_histogram ~label:"h" h in
  Alcotest.(check (option (float 1e-9))) "normalised %" (Some 75.0) (Series.y_at s 1.0);
  let raw = Series.of_histogram ~label:"h" ~normalise:false h in
  Alcotest.(check (option (float 1e-9))) "raw count" (Some 25.0) (Series.y_at raw 2.0)

let test_series_to_csv () =
  let a = Series.make ~label:"reliable" [ (1.0, 10.0); (2.0, 20.0) ] in
  let b = Series.make ~label:"with,comma" [ (1.0, 5.0) ] in
  let csv = Series.to_csv ~x_label:"rate" [ a; b ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header quotes the comma" "rate,reliable,\"with,comma\""
    (List.hd lines);
  Alcotest.(check bool) "missing cell empty" true
    (Astring.String.is_suffix ~affix:"," (List.nth lines 2))

let test_series_render_aligns_columns () =
  let a = Series.make ~label:"reliable" [ (1.0, 10.0); (2.0, 20.0) ] in
  let b = Series.make ~label:"semantic" [ (1.0, 5.0) ] in
  let out = Format.asprintf "%a" (fun ppf () -> Series.render ~x_label:"x" ppf [ a; b ]) () in
  Alcotest.(check bool) "mentions both labels" true
    (Astring.String.is_infix ~affix:"reliable" out
    && Astring.String.is_infix ~affix:"semantic" out);
  Alcotest.(check bool) "dash for missing point" true (Astring.String.is_infix ~affix:"-" out)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basic moments" `Quick test_summary_basic;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "single" `Quick test_summary_single;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          q summary_matches_naive;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "fractions" `Quick test_histogram_fractions;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentile;
          Alcotest.test_case "mean/min/max" `Quick test_histogram_mean_minmax;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "time-weighted mean" `Quick test_timeline_mean;
          Alcotest.test_case "fraction_at" `Quick test_timeline_fraction_at;
          Alcotest.test_case "monotonicity enforced" `Quick test_timeline_monotonic;
          Alcotest.test_case "zero-span segments" `Quick test_timeline_zero_span_segments;
        ] );
      ( "series",
        [
          Alcotest.test_case "lookup and map" `Quick test_series_lookup_and_map;
          Alcotest.test_case "of_histogram" `Quick test_series_of_histogram;
          Alcotest.test_case "render" `Quick test_series_render_aligns_columns;
          Alcotest.test_case "csv" `Quick test_series_to_csv;
        ] );
    ]
