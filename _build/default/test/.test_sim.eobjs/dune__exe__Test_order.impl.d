test/test_order.ml: Alcotest Array Fun Gen Hashtbl List Option Printf QCheck QCheck_alcotest Svs_codec Svs_net Svs_obs Svs_order Svs_sim
