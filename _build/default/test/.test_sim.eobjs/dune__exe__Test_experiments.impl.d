test/test_experiments.ml: Alcotest Array Float List Printf Svs_experiments Svs_obs Svs_stats Svs_workload
