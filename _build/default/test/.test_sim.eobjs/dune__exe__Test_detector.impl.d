test/test_detector.ml: Alcotest Svs_detector Svs_net Svs_sim
