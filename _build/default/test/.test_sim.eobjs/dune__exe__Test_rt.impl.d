test/test_rt.ml: Alcotest Array Bytes Char List Option Printf String Svs_codec Svs_core Svs_detector Svs_obs Svs_order Svs_rt Unix
