test/test_consensus.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Svs_consensus Svs_detector Svs_net Svs_sim
