test/test_net.ml: Alcotest Array Hashtbl List Option Printf QCheck QCheck_alcotest Svs_net Svs_sim
