test/test_game.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Svs_game Svs_workload
