test/test_sim.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Svs_sim
