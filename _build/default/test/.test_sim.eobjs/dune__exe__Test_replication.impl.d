test/test_replication.ml: Alcotest Fun List Printf QCheck QCheck_alcotest Svs_core Svs_net Svs_replication Svs_sim
