test/test_workload.ml: Alcotest Array Float Hashtbl Lazy List Printf QCheck QCheck_alcotest Svs_obs Svs_stats Svs_workload
