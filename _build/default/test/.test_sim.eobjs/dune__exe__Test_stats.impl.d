test/test_stats.ml: Alcotest Astring Float Format Gen List QCheck QCheck_alcotest String Svs_stats
