test/test_obs.ml: Alcotest Array Gen List QCheck QCheck_alcotest Svs_obs Svs_sim
