test/test_codec.ml: Alcotest Float Format List Printf QCheck QCheck_alcotest String Svs_codec Svs_core Svs_obs
