test/test_core.ml: Alcotest Fun Gen List Option Printf QCheck QCheck_alcotest Stdlib String Svs_core Svs_detector Svs_net Svs_obs Svs_sim
