(* Tests for consensus: Chandra–Toueg over the simulated network and
   the centralised arbiter. *)

module Engine = Svs_sim.Engine
module Network = Svs_net.Network
module Latency = Svs_net.Latency
module Oracle = Svs_detector.Oracle
module Ct = Svs_consensus.Chandra_toueg
module Arbiter = Svs_consensus.Arbiter

(* A rig running one CT instance among n nodes with an oracle FD. *)
type rig = {
  engine : Engine.t;
  net : string Ct.msg Network.t;
  oracle : Oracle.t;
  instances : string Ct.t option array;
  decisions : string option array;
}

let make_rig ?(n = 5) ?(latency = Latency.Uniform { lo = 0.001; hi = 0.01 }) ~proposals () =
  let engine = Engine.create ~seed:11 () in
  let net = Network.create engine ~nodes:n ~latency () in
  let oracle = Oracle.create ~nodes:n in
  let instances = Array.make n None in
  let decisions = Array.make n None in
  let members = List.init n Fun.id in
  List.iteri
    (fun i proposal ->
      Network.set_handler net ~node:i (fun ~src msg ->
          match instances.(i) with
          | Some inst -> Ct.on_message inst ~src msg
          | None -> ());
      let inst =
        Ct.create engine ~me:i ~members
          ~suspects:(fun p -> Oracle.suspects oracle p)
          ~send:(fun ~dst msg -> Network.send net ~src:i ~dst msg)
          ~on_decide:(fun v ->
            assert (decisions.(i) = None);
            decisions.(i) <- Some v)
          proposal
      in
      instances.(i) <- Some inst)
    proposals;
  { engine; net; oracle; instances; decisions }

let proposals_of n = List.init n (fun i -> Printf.sprintf "p%d" i)

let check_agreement_validity rig ~correct ~proposals =
  let decided =
    List.filter_map (fun i -> rig.decisions.(i)) correct
  in
  Alcotest.(check int) "all correct decided" (List.length correct) (List.length decided);
  (match decided with
  | [] -> Alcotest.fail "nobody decided"
  | v :: rest ->
      List.iter (fun v' -> Alcotest.(check string) "agreement" v v') rest;
      Alcotest.(check bool) "validity: decided value was proposed" true (List.mem v proposals))

let test_ct_no_failures () =
  let rig = make_rig ~proposals:(proposals_of 5) () in
  Engine.run ~until:10.0 rig.engine;
  check_agreement_validity rig ~correct:[ 0; 1; 2; 3; 4 ] ~proposals:(proposals_of 5)

let test_ct_coordinator_crash () =
  (* Crash node 0 (the round-0 coordinator) before it can finish. *)
  let rig = make_rig ~proposals:(proposals_of 5) ~latency:(Latency.Constant 0.05) () in
  Network.crash rig.net ~node:0;
  ignore (Engine.schedule rig.engine ~delay:0.2 (fun () -> Oracle.mark_crashed rig.oracle 0));
  Engine.run ~until:30.0 rig.engine;
  check_agreement_validity rig ~correct:[ 1; 2; 3; 4 ] ~proposals:(proposals_of 5)

let test_ct_two_crashes () =
  let rig = make_rig ~proposals:(proposals_of 5) ~latency:(Latency.Constant 0.05) () in
  Network.crash rig.net ~node:0;
  Network.crash rig.net ~node:1;
  ignore
    (Engine.schedule rig.engine ~delay:0.3 (fun () ->
         Oracle.mark_crashed rig.oracle 0;
         Oracle.mark_crashed rig.oracle 1));
  Engine.run ~until:30.0 rig.engine;
  check_agreement_validity rig ~correct:[ 2; 3; 4 ] ~proposals:(proposals_of 5)

let test_ct_single_member () =
  let rig = make_rig ~n:1 ~proposals:[ "solo" ] () in
  Engine.run ~until:5.0 rig.engine;
  Alcotest.(check (option string)) "solo decides own value" (Some "solo") rig.decisions.(0)

let test_ct_late_suspicion_still_terminates () =
  (* The coordinator crashes mid-round; suspicion arrives late. *)
  let rig = make_rig ~proposals:(proposals_of 3) ~n:3 ~latency:(Latency.Constant 0.02) () in
  ignore
    (Engine.schedule rig.engine ~delay:0.01 (fun () -> Network.crash rig.net ~node:0));
  ignore (Engine.schedule rig.engine ~delay:2.0 (fun () -> Oracle.mark_crashed rig.oracle 0));
  Engine.run ~until:30.0 rig.engine;
  check_agreement_validity rig ~correct:[ 1; 2 ] ~proposals:(proposals_of 3)

let ct_agreement_property =
  QCheck.Test.make ~name:"CT agreement+validity under random crash schedules" ~count:30
    QCheck.(pair small_int (int_bound 1))
    (fun (seed, crash_count) ->
      let n = 5 in
      let engine = Engine.create ~seed () in
      let net = Network.create engine ~nodes:n ~latency:(Latency.Exponential { mean = 0.02 }) () in
      let oracle = Oracle.create ~nodes:n in
      let instances = Array.make n None in
      let decisions = Array.make n None in
      let members = List.init n Fun.id in
      let proposals = proposals_of n in
      List.iteri
        (fun i proposal ->
          Network.set_handler net ~node:i (fun ~src msg ->
              match instances.(i) with Some inst -> Ct.on_message inst ~src msg | None -> ());
          instances.(i) <-
            Some
              (Ct.create engine ~me:i ~members
                 ~suspects:(fun p -> Oracle.suspects oracle p)
                 ~send:(fun ~dst msg -> Network.send net ~src:i ~dst msg)
                 ~on_decide:(fun v -> decisions.(i) <- Some v)
                 proposal))
        proposals;
      (* Crash up to [crash_count] random processes at random times. *)
      let rng = Svs_sim.Rng.create ~seed:(seed + 1) in
      let crashed = ref [] in
      for _ = 1 to crash_count do
        let victim = Svs_sim.Rng.int rng n in
        if not (List.mem victim !crashed) then begin
          crashed := victim :: !crashed;
          let at = Svs_sim.Rng.float rng 0.2 in
          ignore
            (Engine.schedule engine ~delay:at (fun () ->
                 Network.crash net ~node:victim;
                 ignore
                   (Engine.schedule engine ~delay:0.5 (fun () ->
                        Oracle.mark_crashed oracle victim))))
        end
      done;
      Engine.run ~until:60.0 engine;
      let correct = List.filter (fun i -> not (List.mem i !crashed)) (List.init n Fun.id) in
      let decided = List.filter_map (fun i -> decisions.(i)) correct in
      List.length decided = List.length correct
      && (match decided with
         | [] -> false
         | v :: rest -> List.for_all (( = ) v) rest && List.mem v proposals))

(* --- Arbiter --- *)

let test_arbiter_decides_at_quorum () =
  let e = Engine.create () in
  let log = ref [] in
  let a =
    Arbiter.create e ~members:[ 0; 1; 2 ]
      ~deliver:(fun ~dst ~instance v -> log := (dst, instance, v) :: !log)
      ()
  in
  Arbiter.propose a ~instance:7 ~from:1 "b";
  Engine.run e;
  Alcotest.(check bool) "below quorum: no decision" true (!log = []);
  Arbiter.propose a ~instance:7 ~from:0 "a";
  Engine.run e;
  Alcotest.(check bool) "decided" true (Arbiter.decided a ~instance:7);
  (* Lowest-id proposer wins: value "a". *)
  let values = List.map (fun (_, _, v) -> v) !log in
  Alcotest.(check (list string)) "same value to everyone" [ "a"; "a"; "a" ] values

let test_arbiter_ignores_duplicates () =
  let e = Engine.create () in
  let a =
    Arbiter.create e ~members:[ 0; 1; 2 ] ~deliver:(fun ~dst:_ ~instance:_ _ -> ()) ()
  in
  Arbiter.propose a ~instance:1 ~from:0 "x";
  Arbiter.propose a ~instance:1 ~from:0 "y";
  Engine.run e;
  Alcotest.(check bool) "one proposer twice is not a quorum" false (Arbiter.decided a ~instance:1)

let test_arbiter_quorum_one () =
  let e = Engine.create () in
  let count = ref 0 in
  let a =
    Arbiter.create e ~members:[ 0; 1; 2 ] ~quorum:1
      ~deliver:(fun ~dst:_ ~instance:_ _ -> incr count)
      ()
  in
  Arbiter.propose a ~instance:0 ~from:2 "z";
  Engine.run e;
  Alcotest.(check int) "delivered to all three" 3 !count

let test_arbiter_removed_member_not_notified () =
  let e = Engine.create () in
  let log = ref [] in
  let a =
    Arbiter.create e ~members:[ 0; 1; 2 ] ~quorum:1
      ~deliver:(fun ~dst ~instance:_ _ -> log := dst :: !log)
      ()
  in
  Arbiter.remove_member a 1;
  Arbiter.propose a ~instance:3 ~from:0 "v";
  Engine.run e;
  Alcotest.(check (list int)) "only remaining members" [ 0; 2 ] (List.sort compare !log)

let test_arbiter_decision_delay () =
  let e = Engine.create () in
  let at = ref nan in
  let a =
    Arbiter.create e ~members:[ 0 ] ~quorum:1 ~decision_delay:0.25
      ~deliver:(fun ~dst:_ ~instance:_ _ -> at := Engine.now e)
      ()
  in
  Arbiter.propose a ~instance:0 ~from:0 "v";
  Engine.run e;
  Alcotest.(check (float 1e-9)) "delivery delayed" 0.25 !at

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_consensus"
    [
      ( "chandra-toueg",
        [
          Alcotest.test_case "no failures" `Quick test_ct_no_failures;
          Alcotest.test_case "coordinator crash" `Quick test_ct_coordinator_crash;
          Alcotest.test_case "two crashes" `Quick test_ct_two_crashes;
          Alcotest.test_case "single member" `Quick test_ct_single_member;
          Alcotest.test_case "late suspicion" `Quick test_ct_late_suspicion_still_terminates;
          q ct_agreement_property;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "decides at quorum" `Quick test_arbiter_decides_at_quorum;
          Alcotest.test_case "duplicate proposals" `Quick test_arbiter_ignores_duplicates;
          Alcotest.test_case "quorum one" `Quick test_arbiter_quorum_one;
          Alcotest.test_case "removed member" `Quick test_arbiter_removed_member_not_notified;
          Alcotest.test_case "decision delay" `Quick test_arbiter_decision_delay;
        ] );
    ]
