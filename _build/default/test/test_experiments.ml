(* Tests for the evaluation harness: the pipeline model and each
   experiment's qualitative invariants (the paper's shapes). These are
   the guardrails that keep the reproduction honest: if a change breaks
   "semantic beats reliable where it should", these fail. *)

module E = Svs_experiments
module P = E.Pipeline
module Stream = Svs_workload.Stream
module Trace = Svs_workload.Trace
module Annotation = Svs_obs.Annotation
module Bitvec = Svs_obs.Bitvec

(* A tiny synthetic stream: one hot item updated every 10 ms, encoded
   with k-enumeration chains (message n obsoletes n-1). *)
let chain_stream ?(n = 400) ?(period = 0.01) ?(k = 16) () =
  let stream = Svs_obs.Kenum_stream.create ~k () in
  Array.init n (fun i ->
      let bm = Svs_obs.Kenum_stream.push stream ~direct:(if i = 0 then [] else [ 1 ]) in
      {
        Stream.sn = i;
        round = i;
        time = float_of_int i *. period;
        item = Some 1;
        kind = Stream.Commit;
        ann = Annotation.Kenum bm;
      })

(* A stream of unrelated (never-obsolete) messages. *)
let reliable_stream ?(n = 400) ?(period = 0.01) () =
  Array.init n (fun i ->
      {
        Stream.sn = i;
        round = i;
        time = float_of_int i *. period;
        item = None;
        kind = Stream.Create;
        ann = Annotation.Unrelated;
      })

(* --- Pipeline mechanics --- *)

let test_pipeline_fast_consumer_no_blocking () =
  let messages = chain_stream () in
  let r = P.run ~messages { P.buffer = 8; consumer_rate = 1000.0; mode = P.Reliable } in
  Alcotest.(check int) "all delivered" 400 r.P.delivered;
  Alcotest.(check (float 1e-9)) "never blocked" 0.0 r.P.blocked_fraction;
  Alcotest.(check int) "nothing purged" 0 r.P.purged

let test_pipeline_conservation () =
  let messages = chain_stream () in
  let r = P.run ~messages { P.buffer = 8; consumer_rate = 60.0; mode = P.Semantic } in
  Alcotest.(check int) "produced = delivered + purged" r.P.produced
    (r.P.delivered + r.P.purged)

let test_pipeline_semantic_absorbs_chain () =
  (* A fully-chained stream purges down to whatever the consumer can
     take: the producer should never block even at a very slow
     consumer, because every insertion purges a predecessor. *)
  let messages = chain_stream ~k:16 () in
  let sem = P.run ~messages { P.buffer = 8; consumer_rate = 20.0; mode = P.Semantic } in
  let rel = P.run ~messages { P.buffer = 8; consumer_rate = 20.0; mode = P.Reliable } in
  Alcotest.(check bool)
    (Printf.sprintf "semantic barely blocked (%.2f)" sem.P.blocked_fraction)
    true (sem.P.blocked_fraction < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "reliable heavily blocked (%.2f)" rel.P.blocked_fraction)
    true (rel.P.blocked_fraction > 0.5)

let test_pipeline_semantic_useless_on_reliable_traffic () =
  (* With no obsolescence the two modes must behave identically. *)
  let messages = reliable_stream () in
  let sem = P.run ~messages { P.buffer = 8; consumer_rate = 50.0; mode = P.Semantic } in
  let rel = P.run ~messages { P.buffer = 8; consumer_rate = 50.0; mode = P.Reliable } in
  Alcotest.(check int) "same purges (none)" rel.P.purged sem.P.purged;
  Alcotest.(check (float 1e-9)) "same blocking" rel.P.blocked_fraction sem.P.blocked_fraction

let test_pipeline_occupancy_bounded () =
  let messages = chain_stream () in
  let r = P.run ~messages { P.buffer = 5; consumer_rate = 30.0; mode = P.Reliable } in
  Alcotest.(check bool) "max occupancy within buffer" true (r.P.max_occupancy <= 5)

let test_pipeline_rejects_bad_config () =
  let messages = chain_stream ~n:5 () in
  Alcotest.check_raises "zero buffer" (Invalid_argument "Pipeline.run: buffer must be positive")
    (fun () -> ignore (P.run ~messages { P.buffer = 0; consumer_rate = 10.0; mode = P.Reliable }));
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Pipeline.run: consumer rate must be positive") (fun () ->
      ignore (P.run ~messages { P.buffer = 4; consumer_rate = 0.0; mode = P.Reliable }))

let test_threshold_monotone_in_mode () =
  let messages = chain_stream ~n:800 () in
  let rel = P.threshold ~messages ~buffer:8 ~mode:P.Reliable () in
  let sem = P.threshold ~messages ~buffer:8 ~mode:P.Semantic () in
  Alcotest.(check bool)
    (Printf.sprintf "semantic threshold (%.1f) below reliable (%.1f)" sem rel)
    true (sem < rel)

let test_perturbation_reliable_formula () =
  (* With unrelated traffic at a constant rate, the tolerated full-stop
     perturbation is simply buffer/rate. *)
  let messages = reliable_stream ~n:1000 ~period:0.01 () in
  let tol = P.perturbation_tolerance ~messages ~buffer:20 ~mode:P.Reliable ~samples:50 () in
  Alcotest.(check bool) (Printf.sprintf "~0.2 s (got %.3f)" tol) true
    (Float.abs (tol -. 0.2) < 0.02)

let test_perturbation_semantic_longer () =
  let messages = chain_stream ~n:2000 ~k:40 () in
  let rel = P.perturbation_tolerance ~messages ~buffer:16 ~mode:P.Reliable ~samples:50 () in
  let sem = P.perturbation_tolerance ~messages ~buffer:16 ~mode:P.Semantic ~samples:50 () in
  Alcotest.(check bool)
    (Printf.sprintf "semantic (%.3f) outlasts reliable (%.3f)" sem rel)
    true (sem > 2.0 *. rel)

(* --- Experiment-level shape checks on a shortened workload --- *)

let spec = { E.Spec.default with rounds = 3000 }

let test_fig4_shapes () =
  let points = E.Fig4.sweep ~spec ~buffer:15 ~rates:[ 30.; 60.; 120. ] () in
  let at rate f =
    f (List.find (fun (p : E.Fig4.point) -> p.E.Fig4.rate = rate) points)
  in
  (* Fast consumer: nobody blocks. *)
  Alcotest.(check bool) "no blocking at 120" true
    (at 120. (fun p -> p.E.Fig4.reliable.P.blocked_fraction < 0.02));
  (* At 30 msg/s the reliable producer suffers; semantic much less. *)
  let rel30 = at 30. (fun p -> p.E.Fig4.reliable.P.blocked_fraction) in
  let sem30 = at 30. (fun p -> p.E.Fig4.semantic.P.blocked_fraction) in
  Alcotest.(check bool)
    (Printf.sprintf "semantic (%.2f) << reliable (%.2f) at 30 msg/s" sem30 rel30)
    true
    (sem30 < rel30 /. 2.0);
  (* Occupancy ordering (Figure 4b): semantic keeps buffers emptier. *)
  let rocc = at 30. (fun p -> p.E.Fig4.reliable.P.mean_occupancy) in
  let socc = at 30. (fun p -> p.E.Fig4.semantic.P.mean_occupancy) in
  Alcotest.(check bool) "semantic occupancy lower" true (socc < rocc)

let test_fig5_shapes () =
  let points, avg_rate = E.Fig5.sweep ~spec ~buffers:[ 4; 16; 28 ] () in
  let p4 = List.nth points 0 and p16 = List.nth points 1 and p28 = List.nth points 2 in
  (* Reliable thresholds stay above the mean input rate. *)
  List.iter
    (fun (p : E.Fig5.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "reliable threshold (%.1f) >= avg rate (%.1f)"
           p.E.Fig5.reliable_threshold avg_rate)
        true
        (p.E.Fig5.reliable_threshold >= avg_rate *. 0.9))
    points;
  (* Purging is ineffective at tiny buffers, effective at large ones. *)
  Alcotest.(check bool) "tiny buffer: semantic ~ reliable" true
    (p4.E.Fig5.semantic_threshold > p4.E.Fig5.reliable_threshold *. 0.7);
  Alcotest.(check bool) "large buffer: semantic crosses below avg rate" true
    (p28.E.Fig5.semantic_threshold < avg_rate);
  (* Perturbation tolerance grows with buffer and semantic wins. *)
  Alcotest.(check bool) "tolerance grows" true
    (p28.E.Fig5.reliable_perturbation > p16.E.Fig5.reliable_perturbation);
  Alcotest.(check bool) "semantic outlasts reliable at 28" true
    (p28.E.Fig5.semantic_perturbation > 1.3 *. p28.E.Fig5.reliable_perturbation)

let test_view_latency_shape () =
  let rel = E.View_latency.run ~spec ~mode:P.Reliable () in
  let sem = E.View_latency.run ~spec ~mode:P.Semantic () in
  Alcotest.(check int) "reliable run is safe" 0 rel.E.View_latency.violations;
  Alcotest.(check int) "semantic run is safe" 0 sem.E.View_latency.violations;
  Alcotest.(check bool)
    (Printf.sprintf "flush shrinks (rel %d vs sem %d)" rel.E.View_latency.pred_size
       sem.E.View_latency.pred_size)
    true
    (sem.E.View_latency.pred_size * 3 < rel.E.View_latency.pred_size);
  Alcotest.(check bool) "semantic purged at the slow member" true
    (sem.E.View_latency.purged > 0)

let test_ablation_shape () =
  let rows = E.Ablation.rows ~spec () in
  Alcotest.(check int) "three encodings" 3 (List.length rows);
  let by enc = List.find (fun r -> r.E.Ablation.encoding = enc) rows in
  let tag = by E.Ablation.Tagging and kenum = by E.Ablation.Kenumeration in
  (* All encodings must enable purging (finite threshold below the
     reliable one is checked via fig5; here: purging happened). *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (E.Ablation.encoding_label r.E.Ablation.encoding ^ " purges")
        true
        (r.E.Ablation.purged_at_30 > 0))
    rows;
  (* Tagging is the most compact; enumeration the least. *)
  let enum = by E.Ablation.Enumeration in
  Alcotest.(check bool) "tagging compact" true
    (tag.E.Ablation.bytes_per_message <= kenum.E.Ablation.bytes_per_message);
  Alcotest.(check bool) "enumeration costly" true
    (enum.E.Ablation.bytes_per_message > tag.E.Ablation.bytes_per_message)

let test_protocol_pipeline_shape () =
  let rel = E.Protocol_pipeline.sweep ~spec ~duration:20.0 ~rates:[ 30.; 100. ] ~mode:P.Reliable () in
  let sem = E.Protocol_pipeline.sweep ~spec ~duration:20.0 ~rates:[ 30.; 100. ] ~mode:P.Semantic () in
  let get points rate =
    List.find (fun (p : E.Protocol_pipeline.point) -> p.E.Protocol_pipeline.rate = rate) points
  in
  List.iter
    (fun (p : E.Protocol_pipeline.point) ->
      Alcotest.(check int) "no violations" 0 p.E.Protocol_pipeline.violations)
    (rel @ sem);
  let rel30 = (get rel 30.).E.Protocol_pipeline.blocked_fraction in
  let sem30 = (get sem 30.).E.Protocol_pipeline.blocked_fraction in
  Alcotest.(check bool)
    (Printf.sprintf "full stack: semantic (%.2f) << reliable (%.2f)" sem30 rel30)
    true
    (sem30 < rel30 /. 2.0)

let test_alternatives_shape () =
  let config = { E.Alternatives.default_config with freeze_every = 10.0 } in
  let get p = E.Alternatives.run ~spec ~config p in
  let exclude = get E.Alternatives.Exclude in
  let big = get E.Alternatives.Big_buffers in
  let deadline = get E.Alternatives.Deadline in
  let svs = get E.Alternatives.Svs in
  (* §2.2's trade-offs, quantified: *)
  Alcotest.(check bool) "exclusion reconfigures every perturbation" true
    (exclude.E.Alternatives.reconfigurations >= 5);
  Alcotest.(check int) "big buffers never reconfigure" 0 big.E.Alternatives.reconfigurations;
  Alcotest.(check bool) "big buffers over-allocate" true
    (big.E.Alternatives.peak_buffer > 3 * config.E.Alternatives.buffer);
  Alcotest.(check bool) "deadline dropping loses live content" true
    (deadline.E.Alternatives.lost_live > 0);
  Alcotest.(check int) "SVS: no reconfigurations" 0 svs.E.Alternatives.reconfigurations;
  Alcotest.(check int) "SVS: no live losses" 0 svs.E.Alternatives.lost_live;
  Alcotest.(check bool) "SVS: bounded memory" true
    (svs.E.Alternatives.peak_buffer <= config.E.Alternatives.buffer);
  Alcotest.(check bool) "SVS: purging did the work" true
    (svs.E.Alternatives.purged_obsolete > 0);
  Alcotest.(check bool) "SVS blocks less than exclusion's baseline" true
    (svs.E.Alternatives.blocked_fraction <= exclude.E.Alternatives.blocked_fraction +. 0.05)

let test_last_resort_shape () =
  (* Short freezes: nobody expelled. Long freezes: reliable goes first;
     at the extreme both reconfigure (the paper's last-resort clause). *)
  let points = E.Last_resort.sweep ~spec ~freezes:[ 0.5; 4.0; 8.0 ] () in
  let at f = List.find (fun (p : E.Last_resort.point) -> p.E.Last_resort.freeze = f) points in
  let short = at 0.5 and mid = at 4.0 and long = at 8.0 in
  Alcotest.(check bool) "short freeze survived by both" true
    ((not short.E.Last_resort.reliable_excluded) && not short.E.Last_resort.semantic_excluded);
  Alcotest.(check bool) "mid freeze: reliable expelled, semantic survives" true
    (mid.E.Last_resort.reliable_excluded && not mid.E.Last_resort.semantic_excluded);
  Alcotest.(check bool) "long freeze: purging not enough, both reconfigure" true
    (long.E.Last_resort.reliable_excluded && long.E.Last_resort.semantic_excluded);
  Alcotest.(check bool) "semantic backlog grows slower" true
    (mid.E.Last_resort.semantic_peak_backlog < mid.E.Last_resort.reliable_peak_backlog)

let test_scaling_shape () =
  let rows = E.Scaling.sweep ~rounds:2000 ~players:[ 2; 10 ] () in
  let small = List.nth rows 0 and large = List.nth rows 1 in
  Alcotest.(check bool) "rate grows with players" true
    (large.E.Scaling.message_rate > small.E.Scaling.message_rate);
  Alcotest.(check bool) "distances grow with players" true
    (large.E.Scaling.p90_distance >= small.E.Scaling.p90_distance);
  Alcotest.(check bool) "larger buffers keep purging effective" true
    (large.E.Scaling.semantic_threshold_large < large.E.Scaling.semantic_threshold_small)

let test_claims_all_hold () =
  let verdicts = E.Claims.evaluate ~spec () in
  Alcotest.(check int) "ten claims" 10 (List.length verdicts);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s — %s" v.E.Claims.id v.E.Claims.claim v.E.Claims.detail)
        true v.E.Claims.holds)
    verdicts

let test_spec_workloads () =
  let synth = E.Spec.trace { spec with E.Spec.workload = E.Spec.Synthetic } in
  let arena = E.Spec.trace { spec with E.Spec.workload = E.Spec.Arena } in
  Alcotest.(check int) "synthetic rounds" 3000 (Trace.round_count synth);
  Alcotest.(check int) "arena rounds" 3000 (Trace.round_count arena);
  Alcotest.(check bool) "different traces" true (synth <> arena)

let test_table_stats_rows () =
  let rows = E.Table_stats.rows ~spec () in
  Alcotest.(check bool) "has the paper's metrics" true (List.length rows >= 6);
  List.iter
    (fun r -> Alcotest.(check bool) "measured non-empty" true (r.E.Table_stats.measured <> ""))
    rows

let test_fig3_series () =
  let a = E.Fig3.fig3a ~spec () in
  let b = E.Fig3.fig3b ~spec () in
  (match a.Svs_stats.Series.points with
  | (rank1, top) :: (_, next) :: _ ->
      Alcotest.(check (float 1e-9)) "starts at rank 1" 1.0 rank1;
      Alcotest.(check bool) "monotone head" true (top >= next)
  | _ -> Alcotest.fail "fig3a too short");
  Alcotest.(check bool) "fig3b within plot range" true
    (List.for_all (fun (d, _) -> d >= 1.0 && d <= 20.0) b.Svs_stats.Series.points)

let () =
  Alcotest.run "svs_experiments"
    [
      ( "pipeline",
        [
          Alcotest.test_case "fast consumer" `Quick test_pipeline_fast_consumer_no_blocking;
          Alcotest.test_case "conservation" `Quick test_pipeline_conservation;
          Alcotest.test_case "semantic absorbs chains" `Quick test_pipeline_semantic_absorbs_chain;
          Alcotest.test_case "no-op on reliable traffic" `Quick
            test_pipeline_semantic_useless_on_reliable_traffic;
          Alcotest.test_case "occupancy bounded" `Quick test_pipeline_occupancy_bounded;
          Alcotest.test_case "config validation" `Quick test_pipeline_rejects_bad_config;
          Alcotest.test_case "threshold ordering" `Quick test_threshold_monotone_in_mode;
          Alcotest.test_case "perturbation formula" `Quick test_perturbation_reliable_formula;
          Alcotest.test_case "perturbation semantic" `Quick test_perturbation_semantic_longer;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "figure 4" `Slow test_fig4_shapes;
          Alcotest.test_case "figure 5" `Slow test_fig5_shapes;
          Alcotest.test_case "view latency" `Slow test_view_latency_shape;
          Alcotest.test_case "ablation" `Slow test_ablation_shape;
          Alcotest.test_case "protocol pipeline" `Slow test_protocol_pipeline_shape;
          Alcotest.test_case "design alternatives" `Slow test_alternatives_shape;
          Alcotest.test_case "last resort" `Slow test_last_resort_shape;
          Alcotest.test_case "player scaling" `Slow test_scaling_shape;
          Alcotest.test_case "all claims hold" `Slow test_claims_all_hold;
        ] );
      ( "harness",
        [
          Alcotest.test_case "spec workloads" `Quick test_spec_workloads;
          Alcotest.test_case "table stats" `Quick test_table_stats_rows;
          Alcotest.test_case "fig3 series" `Quick test_fig3_series;
        ] );
    ]
