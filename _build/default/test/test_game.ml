(* Tests for the arena game server. *)

module Arena = Svs_game.Arena
module Trace = Svs_workload.Trace

let small_config = { Arena.default_config with players = 3; pickups = 5; seed = 17 }

let test_initial_world () =
  let t = Arena.create small_config in
  Alcotest.(check int) "players + pickups" 8 (Arena.item_count t);
  let kinds = List.map (fun (_, st) -> st.Arena.kind) (Arena.items t) in
  Alcotest.(check int) "3 players" 3
    (List.length (List.filter (fun k -> k = Arena.Player) kinds));
  Alcotest.(check int) "5 pickups" 5
    (List.length (List.filter (fun k -> k = Arena.Pickup) kinds));
  Alcotest.(check int) "round 0" 0 (Arena.round t)

let test_step_advances_round () =
  let t = Arena.create small_config in
  ignore (Arena.step t);
  ignore (Arena.step t);
  Alcotest.(check int) "round 2" 2 (Arena.round t)

let test_events_apply_to_replica () =
  (* A replica applying every event must track the world exactly. *)
  let t = Arena.create small_config in
  let replica = Hashtbl.create 64 in
  List.iter (fun (id, st) -> Hashtbl.replace replica id st) (Arena.items t);
  for _ = 1 to 200 do
    List.iter (Arena.apply replica) (Arena.step t)
  done;
  let replica_items =
    List.sort (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun id st acc -> (id, st) :: acc) replica [])
  in
  Alcotest.(check bool) "replica matches world" true (replica_items = Arena.items t)

let test_projectiles_live_and_die () =
  let t =
    Arena.create { small_config with shoot_probability = 0.5; projectile_ttl = 3 }
  in
  let created = ref 0 and destroyed = ref 0 in
  for _ = 1 to 300 do
    List.iter
      (function
        | Arena.Created (_, st) when st.Arena.kind = Arena.Projectile -> incr created
        | Arena.Destroyed _ -> incr destroyed
        | Arena.Created _ | Arena.Updated _ -> ())
      (Arena.step t)
  done;
  Alcotest.(check bool) "projectiles spawned" true (!created > 10);
  Alcotest.(check bool) "most projectiles died" true
    (!destroyed >= !created - 20);
  (* The world must not leak projectiles. *)
  Alcotest.(check bool) "bounded world" true (Arena.item_count t < 8 + 30)

let test_hits_reduce_health () =
  (* With many players in a tiny arena and aggressive shooting, hits
     must land and reduce someone's health. *)
  let t =
    Arena.create
      { small_config with players = 8; arena_size = 12.0; shoot_probability = 0.8 }
  in
  let initial = List.map (fun (_, st) -> st.Arena.attribute) (Arena.items t) in
  for _ = 1 to 500 do
    ignore (Arena.step t)
  done;
  let final =
    List.filter_map
      (fun (_, st) -> if st.Arena.kind = Arena.Player then Some st.Arena.attribute else None)
      (Arena.items t)
  in
  ignore initial;
  Alcotest.(check bool) "someone got hurt" true (List.exists (fun h -> h < 100) final)

let test_determinism () =
  let a = Arena.create small_config in
  let b = Arena.create small_config in
  for _ = 1 to 100 do
    let ea = Arena.step a and eb = Arena.step b in
    if ea <> eb then Alcotest.fail "same seed diverged"
  done

let test_restore_round_trip () =
  let t = Arena.create small_config in
  for _ = 1 to 150 do
    ignore (Arena.step t)
  done;
  let snapshot = Arena.items t in
  let restored = Arena.restore small_config ~round:(Arena.round t) snapshot in
  Alcotest.(check bool) "items preserved" true (Arena.items restored = snapshot);
  Alcotest.(check int) "round preserved" (Arena.round t) (Arena.round restored);
  (* The restored server must be able to keep playing. *)
  ignore (Arena.step restored);
  Alcotest.(check bool) "still steps" true (Arena.round restored = Arena.round t + 1)

let test_restore_fresh_ids () =
  (* New items created after a restore must not collide with existing
     ids. *)
  let t = Arena.create { small_config with shoot_probability = 1.0 } in
  for _ = 1 to 50 do
    ignore (Arena.step t)
  done;
  let restored =
    Arena.restore { small_config with shoot_probability = 1.0 } ~round:(Arena.round t)
      (Arena.items t)
  in
  let existing = List.map fst (Arena.items restored) in
  let fresh = ref [] in
  for _ = 1 to 20 do
    List.iter
      (function Arena.Created (id, _) -> fresh := id :: !fresh | _ -> ())
      (Arena.step restored)
  done;
  Alcotest.(check bool) "no id collision" true
    (List.for_all (fun id -> not (List.mem id existing)) !fresh)

let test_simulate_produces_trace () =
  let trace = Arena.simulate ~rounds:500 small_config in
  Alcotest.(check int) "rounds" 500 (Trace.round_count trace);
  Alcotest.(check bool) "has ops" true (Trace.total_ops trace > 0)

let simulate_trace_consistency =
  QCheck.Test.make ~name:"arena traces respect create/update/destroy discipline" ~count:10
    QCheck.small_int
    (fun seed ->
      let trace = Arena.simulate ~rounds:300 { small_config with seed } in
      let alive = Hashtbl.create 64 in
      for i = 0 to small_config.Arena.players + small_config.Arena.pickups - 1 do
        Hashtbl.replace alive i ()
      done;
      let ok = ref true in
      Trace.iter_rounds
        (fun _ { Trace.ops; _ } ->
          List.iter
            (fun op ->
              match op.Trace.kind with
              | Trace.Create ->
                  if Hashtbl.mem alive op.Trace.item then ok := false
                  else Hashtbl.replace alive op.Trace.item ()
              | Trace.Update -> if not (Hashtbl.mem alive op.Trace.item) then ok := false
              | Trace.Destroy ->
                  if Hashtbl.mem alive op.Trace.item then Hashtbl.remove alive op.Trace.item
                  else ok := false)
            ops)
        trace;
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_game"
    [
      ( "arena",
        [
          Alcotest.test_case "initial world" `Quick test_initial_world;
          Alcotest.test_case "rounds advance" `Quick test_step_advances_round;
          Alcotest.test_case "replica application" `Quick test_events_apply_to_replica;
          Alcotest.test_case "projectile lifecycle" `Quick test_projectiles_live_and_die;
          Alcotest.test_case "hits reduce health" `Quick test_hits_reduce_health;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "restore round-trip" `Quick test_restore_round_trip;
          Alcotest.test_case "restore fresh ids" `Quick test_restore_fresh_ids;
          Alcotest.test_case "simulate trace" `Quick test_simulate_produces_trace;
          q simulate_trace_consistency;
        ] );
    ]
