(* Tests for svs_workload: traces, stream encoding, statistics,
   generator calibration. *)

module Trace = Svs_workload.Trace
module Stream = Svs_workload.Stream
module Synthetic = Svs_workload.Synthetic
module Trace_stats = Svs_workload.Trace_stats
module Annotation = Svs_obs.Annotation
module Bitvec = Svs_obs.Bitvec
module Histogram = Svs_stats.Histogram

let mk_trace ?(round_rate = 30.0) rounds_ops =
  {
    Trace.rounds =
      Array.of_list
        (List.map
           (fun ops ->
             { Trace.ops = List.map (fun (item, kind) -> { Trace.item; kind }) ops; active = 10 })
           rounds_ops);
    round_rate;
  }

(* --- Trace basics --- *)

let test_trace_accessors () =
  let t = mk_trace [ [ (1, Trace.Update) ]; []; [ (2, Trace.Create); (2, Trace.Update) ] ] in
  Alcotest.(check int) "rounds" 3 (Trace.round_count t);
  Alcotest.(check int) "ops" 3 (Trace.total_ops t);
  Alcotest.(check (float 1e-9)) "duration" 0.1 (Trace.duration t)

(* --- Stream encoding --- *)

let test_stream_single_update_rounds () =
  let t = mk_trace [ [ (1, Trace.Update) ]; [ (1, Trace.Update) ] ] in
  let messages = Stream.of_trace ~k:8 t in
  Alcotest.(check int) "one message per single-op round" 2 (Array.length messages);
  (* Both are commits (single-item batches) and the second covers the
     first. *)
  Alcotest.(check bool) "kinds are commit" true
    (Array.for_all (fun m -> m.Stream.kind = Stream.Commit) messages);
  let older = (Stream.id_of ~sender:0 messages.(0), messages.(0).Stream.ann) in
  let newer = (Stream.id_of ~sender:0 messages.(1), messages.(1).Stream.ann) in
  Alcotest.(check bool) "second obsoletes first" true (Annotation.obsoletes ~older ~newer)

let test_stream_sns_sequential () =
  let t =
    mk_trace
      [
        [ (1, Trace.Update); (2, Trace.Update) ];
        [ (3, Trace.Create) ];
        [ (1, Trace.Update); (3, Trace.Update); (3, Trace.Destroy) ];
      ]
  in
  let messages = Stream.of_trace ~k:8 t in
  Array.iteri
    (fun i m -> Alcotest.(check int) (Printf.sprintf "sn %d" i) i m.Stream.sn)
    messages;
  (* Times must be non-decreasing. *)
  let ok = ref true in
  Array.iteri
    (fun i m -> if i > 0 && m.Stream.time < messages.(i - 1).Stream.time then ok := false)
    messages;
  Alcotest.(check bool) "times monotone" true !ok

let test_stream_creates_never_covered () =
  (* Creations/destructions must never become obsolete, even when the
     same item is updated later. *)
  let t =
    mk_trace
      [ [ (5, Trace.Create) ]; [ (5, Trace.Update) ]; [ (5, Trace.Update) ];
        [ (5, Trace.Destroy) ] ]
  in
  let messages = Stream.of_trace ~k:8 t in
  let covers = Trace_stats.obsolescence_distances messages in
  let share = Trace_stats.never_obsolete_share messages in
  (* 4 messages: create, update, update, destroy. Only the first update
     is covered (by the second). *)
  Alcotest.(check int) "one covered message" 1 (Histogram.count covers);
  Alcotest.(check (float 1e-9)) "never-obsolete share" 0.75 share;
  let kinds = Array.map (fun m -> m.Stream.kind) messages in
  Alcotest.(check bool) "create kind preserved" true (kinds.(0) = Stream.Create);
  Alcotest.(check bool) "destroy kind preserved" true (kinds.(3) = Stream.Destroy)

let test_stream_multi_item_round_is_batch () =
  let t = mk_trace [ [ (1, Trace.Update); (2, Trace.Update); (3, Trace.Update) ] ] in
  let messages = Stream.of_trace ~k:8 t in
  Alcotest.(check int) "3 messages" 3 (Array.length messages);
  Alcotest.(check (list bool)) "last is the commit" [ false; false; true ]
    (Array.to_list (Array.map (fun m -> m.Stream.kind = Stream.Commit) messages))

let test_stream_empty_rounds_skipped () =
  let t = mk_trace [ []; []; [] ] in
  Alcotest.(check int) "no messages" 0 (Array.length (Stream.of_trace t))

(* --- Statistics --- *)

let test_rank_frequencies () =
  let t =
    mk_trace
      [
        [ (7, Trace.Update) ];
        [ (7, Trace.Update); (3, Trace.Update) ];
        [ (7, Trace.Update) ];
        [ (3, Trace.Update) ];
      ]
  in
  match Trace_stats.rank_frequencies t with
  | [ (1, top); (2, snd) ] ->
      Alcotest.(check (float 1e-9)) "top item in 75% of rounds" 75.0 top;
      Alcotest.(check (float 1e-9)) "second in 50%" 50.0 snd
  | other -> Alcotest.failf "unexpected ranks: %d entries" (List.length other)

let test_rank_frequencies_ignore_creates () =
  let t = mk_trace [ [ (1, Trace.Create) ]; [ (1, Trace.Update) ] ] in
  Alcotest.(check int) "creates don't count as modifications" 1
    (List.length (Trace_stats.rank_frequencies t))

let test_summary_fields () =
  let t = mk_trace [ [ (1, Trace.Update) ]; [] ] in
  let messages = Stream.of_trace ~k:8 t in
  let s = Trace_stats.summarise t messages in
  Alcotest.(check int) "rounds" 2 s.Trace_stats.rounds;
  Alcotest.(check int) "messages" 1 s.Trace_stats.messages;
  Alcotest.(check (float 1e-9)) "avg modified" 0.5 s.Trace_stats.avg_modified_per_round;
  Alcotest.(check (float 1e-9)) "avg active" 10.0 s.Trace_stats.avg_active_items

(* --- Generator calibration (the paper's §5.2 numbers) --- *)

let calibration_trace = lazy (Synthetic.paper_session ())

let calibration_stream = lazy (Stream.of_trace ~k:30 (Lazy.force calibration_trace))

let test_generator_calibration_rounds () =
  let t = Lazy.force calibration_trace in
  Alcotest.(check int) "paper round count" 11696 (Trace.round_count t)

let test_generator_calibration_activity () =
  let s = Trace_stats.summarise (Lazy.force calibration_trace) (Lazy.force calibration_stream) in
  Alcotest.(check bool)
    (Printf.sprintf "active items ~42.33 (got %.2f)" s.Trace_stats.avg_active_items)
    true
    (Float.abs (s.Trace_stats.avg_active_items -. 42.33) < 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "modified ~1.39 (got %.2f)" s.Trace_stats.avg_modified_per_round)
    true
    (Float.abs (s.Trace_stats.avg_modified_per_round -. 1.39) < 0.25)

let test_generator_calibration_obsolescence () =
  let s = Trace_stats.summarise (Lazy.force calibration_trace) (Lazy.force calibration_stream) in
  Alcotest.(check bool)
    (Printf.sprintf "never-obsolete ~41.88%% (got %.1f%%)"
       (100.0 *. s.Trace_stats.never_obsolete_share))
    true
    (Float.abs (s.Trace_stats.never_obsolete_share -. 0.4188) < 0.08)

let test_generator_calibration_skew () =
  match Trace_stats.rank_frequencies (Lazy.force calibration_trace) with
  | (_, top) :: _ ->
      Alcotest.(check bool) (Printf.sprintf "top item 15-35%% (got %.1f%%)" top) true
        (top > 15.0 && top < 35.0)
  | [] -> Alcotest.fail "no ranks"

let test_generator_calibration_distances () =
  let h = Trace_stats.obsolescence_distances (Lazy.force calibration_stream) in
  let within10 = Histogram.fraction_le h 10 in
  Alcotest.(check bool)
    (Printf.sprintf "majority of related pairs within 10 msgs (got %.0f%%)" (100.0 *. within10))
    true (within10 > 0.5)

let test_generator_determinism () =
  let a = Synthetic.generate { Synthetic.default with rounds = 200 } in
  let b = Synthetic.generate { Synthetic.default with rounds = 200 } in
  Alcotest.(check bool) "same seed, same trace" true (a.Trace.rounds = b.Trace.rounds);
  let c = Synthetic.generate { Synthetic.default with rounds = 200; seed = 1 } in
  Alcotest.(check bool) "different seed differs" false (a.Trace.rounds = c.Trace.rounds)

let generator_traces_well_formed =
  QCheck.Test.make ~name:"generated traces are well-formed" ~count:20
    QCheck.(pair small_int (int_range 50 300))
    (fun (seed, rounds) ->
      let t = Synthetic.generate { Synthetic.default with seed; rounds } in
      let alive = Hashtbl.create 64 in
      for i = 0 to Synthetic.default.Synthetic.persistent_items - 1 do
        Hashtbl.replace alive i ()
      done;
      let ok = ref (Trace.round_count t = rounds) in
      Trace.iter_rounds
        (fun _ { Trace.ops; active } ->
          if active < 0 then ok := false;
          List.iter
            (fun op ->
              match op.Trace.kind with
              | Trace.Create ->
                  if Hashtbl.mem alive op.Trace.item then ok := false
                  else Hashtbl.replace alive op.Trace.item ()
              | Trace.Update -> if not (Hashtbl.mem alive op.Trace.item) then ok := false
              | Trace.Destroy ->
                  if not (Hashtbl.mem alive op.Trace.item) then ok := false
                  else Hashtbl.remove alive op.Trace.item)
            ops)
        t;
      !ok)

let stream_annotations_never_forward =
  QCheck.Test.make ~name:"stream annotations reference only the past" ~count:20
    QCheck.(pair small_int (int_range 50 200))
    (fun (seed, rounds) ->
      let t = Synthetic.generate { Synthetic.default with seed; rounds } in
      let messages = Stream.of_trace ~k:16 t in
      Array.for_all
        (fun (m : Stream.message) ->
          match m.Stream.ann with
          | Annotation.Kenum bm ->
              List.for_all (fun d -> m.Stream.sn - d >= 0) (Bitvec.distances bm)
          | Annotation.Unrelated | Annotation.Tag _ | Annotation.Enum _ -> true)
        messages)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_workload"
    [
      ("trace", [ Alcotest.test_case "accessors" `Quick test_trace_accessors ]);
      ( "stream",
        [
          Alcotest.test_case "single-update rounds" `Quick test_stream_single_update_rounds;
          Alcotest.test_case "sequential sns" `Quick test_stream_sns_sequential;
          Alcotest.test_case "creates stay reliable" `Quick test_stream_creates_never_covered;
          Alcotest.test_case "multi-item batches" `Quick test_stream_multi_item_round_is_batch;
          Alcotest.test_case "empty rounds" `Quick test_stream_empty_rounds_skipped;
          q stream_annotations_never_forward;
        ] );
      ( "stats",
        [
          Alcotest.test_case "rank frequencies" `Quick test_rank_frequencies;
          Alcotest.test_case "ranks ignore creates" `Quick test_rank_frequencies_ignore_creates;
          Alcotest.test_case "summary fields" `Quick test_summary_fields;
        ] );
      ( "generator",
        [
          Alcotest.test_case "round count" `Quick test_generator_calibration_rounds;
          Alcotest.test_case "activity calibration" `Slow test_generator_calibration_activity;
          Alcotest.test_case "obsolescence calibration" `Slow test_generator_calibration_obsolescence;
          Alcotest.test_case "popularity skew" `Slow test_generator_calibration_skew;
          Alcotest.test_case "distance concentration" `Slow test_generator_calibration_distances;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          q generator_traces_well_formed;
        ] );
    ]
