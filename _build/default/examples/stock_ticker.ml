(* A stock-exchange ticker on semantically reliable total order.

   The throughput-stability problem that motivated this line of work
   was first reported from the Swiss Exchange trading system (the
   paper's §6): market-data fan-out must not stall because one terminal
   is slow, yet every terminal must see the same tape.

   Here a feed publisher totally orders two kinds of messages through
   [Svs_order.Total]:
   - QUOTE(symbol, price): a newer quote for the same symbol obsoletes
     queued older ones (item tagging) — a slow terminal may skip
     straight to the freshest price;
   - TRADE(symbol, qty, price): executions are never skipped.

   Every terminal delivers the surviving messages in the same global
   order, so the tapes agree on everything that matters.

   Run with: dune exec examples/stock_ticker.exe *)

module Engine = Svs_sim.Engine
module Network = Svs_net.Network
module Latency = Svs_net.Latency
module Total = Svs_order.Total
module Annotation = Svs_obs.Annotation
module Rng = Svs_sim.Rng

type event =
  | Quote of { symbol : int; price : float }
  | Trade of { symbol : int; qty : int; price : float }

let symbols = [| "ACME"; "GLOBEX"; "INITECH"; "HOOLI" |]

let () =
  let engine = Engine.create ~seed:21 () in
  let n = 4 (* node 0: feed; 1-3: terminals *) in
  let net = Network.create engine ~nodes:n ~latency:(Latency.Uniform { lo = 0.001; hi = 0.004 }) () in
  let members = List.init n Fun.id in
  let nodes =
    Array.init n (fun me ->
        Total.create ~me ~members
          ~send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ())
  in
  Array.iteri
    (fun i node ->
      Network.set_handler net ~node:i (fun ~src msg -> Total.on_message node ~src msg))
    nodes;
  let feed = nodes.(0) in

  (* Market activity: a few hundred quotes, occasional trades. *)
  let rng = Rng.create ~seed:8 in
  let price = Array.make (Array.length symbols) 100.0 in
  let quotes = ref 0 and trades = ref 0 in
  ignore
    (Engine.every engine ~period:0.002 (fun () ->
         let s = Rng.int rng (Array.length symbols) in
         price.(s) <- Float.max 1.0 (price.(s) +. Rng.normal rng ~mu:0.0 ~sigma:0.4);
         if Rng.chance rng 0.12 then begin
           incr trades;
           ignore
             (Total.multicast feed
                (Trade { symbol = s; qty = 100 * (1 + Rng.int rng 9); price = price.(s) }))
         end
         else begin
           incr quotes;
           (* Quotes of the same symbol obsolete one another. *)
           ignore
             (Total.multicast feed ~ann:(Annotation.Tag s)
                (Quote { symbol = s; price = price.(s) }))
         end;
         Engine.now engine < 1.0));
  (* Each terminal accumulates its tape; terminal 1 keeps up during
     the session, terminal 3 only drains at the end (it was "garbage
     collecting"). *)
  let tapes = Array.make n [] in
  let drain i =
    List.iter (fun entry -> tapes.(i) <- entry :: tapes.(i)) (Total.deliver_all nodes.(i))
  in
  ignore
    (Engine.every engine ~period:0.004 (fun () ->
         drain 1;
         Engine.now engine < 1.2));
  Engine.run ~until:1.3 engine;
  Array.iteri (fun i _ -> drain i) nodes;
  let tapes = Array.map List.rev tapes in
  let shown (tape : (int * event Total.data) list) =
    List.filter_map
      (fun (seq, d) ->
        match d.Total.payload with
        | Trade { symbol; qty; price } ->
            Some (Printf.sprintf "#%d TRADE %s %d @ %.2f" seq symbols.(symbol) qty price)
        | Quote _ -> None)
      tape
  in
  Format.printf "published: %d quotes, %d trades@." !quotes !trades;
  Format.printf "slow terminal skipped %d stale quotes, missed 0 trades@."
    (Total.purged nodes.(3));
  let trades_at i =
    List.length
      (List.filter
         (fun (_, d) -> match d.Total.payload with Trade _ -> true | Quote _ -> false)
         tapes.(i))
  in
  Format.printf "trades on each tape: terminal1=%d terminal2=%d terminal3=%d@."
    (trades_at 1) (trades_at 2) (trades_at 3);
  let t3_trades = shown tapes.(3) in
  Format.printf "last 5 tape entries at the slow terminal:@.";
  List.iteri
    (fun i line -> if i >= List.length t3_trades - 5 then Format.printf "  %s@." line)
    t3_trades;
  (* Tapes must agree on trades and their order. *)
  let trade_lines i = shown tapes.(i) in
  if trade_lines 1 <> trade_lines 2 || trade_lines 2 <> trade_lines 3 then begin
    print_endline "TAPES DISAGREE";
    exit 1
  end;
  print_endline "all terminals agree on the tape"
