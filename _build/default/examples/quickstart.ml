(* Quickstart: a four-member SVS group exchanging tagged updates.

   Demonstrates the core API surface:
   - build a simulated cluster ([Group.create_cluster]),
   - multicast with an obsolescence annotation ([Annotation.Tag]),
   - pull deliveries (data and view-change markers),
   - crash a member and watch the group reconfigure,
   - check the run against the paper's safety properties.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Svs_sim.Engine
module Group = Svs_core.Group
module Types = Svs_core.Types
module View = Svs_core.View
module Checker = Svs_core.Checker
module Annotation = Svs_obs.Annotation
module Latency = Svs_net.Latency

let () =
  let engine = Engine.create ~seed:7 () in
  let cluster =
    Group.create_cluster engine ~members:[ 0; 1; 2; 3 ]
      ~latency:(Latency.Uniform { lo = 0.001; hi = 0.005 })
      ()
  in
  let sender = Group.member cluster 0 in

  (* Publish a stream of updates to two "items". Successive updates of
     the same item carry the same tag, so older queued values are
     purgeable at slow receivers. *)
  let publish item value =
    match Group.multicast sender ~ann:(Annotation.Tag item) (item, value) with
    | Ok _ -> ()
    | Error `Blocked -> print_endline "  (view change in progress, retry later)"
    | Error `Not_member -> print_endline "  (no longer a member)"
  in
  for v = 1 to 5 do
    publish 1 v;
    publish 2 (10 * v)
  done;

  (* Crash member 3 half a second in: the others reconfigure. *)
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Group.crash cluster 3));
  Engine.run engine;

  (* Every surviving member drains its delivery queue. *)
  List.iter
    (fun m ->
      if Group.id m <> 3 then begin
        Format.printf "member %d (final view %a):@." (Group.id m) View.pp (Group.view m);
        List.iter
          (function
            | Types.Data d ->
                let item, v = d.Types.payload in
                Format.printf "  item %d = %d@." item v
            | Types.View_change v -> Format.printf "  --- new view %a ---@." View.pp v)
          (Group.deliver_all m)
      end)
    (Group.members cluster);

  (* The built-in checker verifies SVS, FIFO-SR and integrity. *)
  match Checker.verify (Group.checker cluster) with
  | [] -> print_endline "checker: all SVS safety properties hold"
  | violations ->
      List.iter (fun v -> print_endline (Checker.violation_to_string v)) violations;
      exit 1
