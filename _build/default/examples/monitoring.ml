(* Distributed monitoring: a sensor gateway replicates readings to
   redundant monitoring consoles (the paper's §1 "distributed control
   and monitoring applications which exhibit a highly interactive
   behavior").

   Readings are single-item updates encoded with item tagging (§4.2):
   a newer reading of the same sensor makes queued older readings
   obsolete. One console suffers a transient performance perturbation
   (it stops consuming for a while). With SVS the group rides it out —
   obsolete readings are purged, no reconfiguration happens, and the
   console ends with the freshest value of every sensor. The same run
   under plain VS (purging off) shows the backlog that flow control
   would have to absorb.

   Run with: dune exec examples/monitoring.exe *)

module Engine = Svs_sim.Engine
module Group = Svs_core.Group
module Types = Svs_core.Types
module Checker = Svs_core.Checker
module Annotation = Svs_obs.Annotation
module Latency = Svs_net.Latency
module Rng = Svs_sim.Rng

let sensors = 8

let reading_period = 0.02 (* each sensor reports 50 times a second *)

let run ~semantic =
  let engine = Engine.create ~seed:11 () in
  let config =
    { Group.default_config with semantic; buffer_capacity = Some 12 }
  in
  let cluster =
    Group.create_cluster engine ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001)
      ~config ()
  in
  let gateway = Group.member cluster 0 in
  let consoles = [ Group.member cluster 1; Group.member cluster 2 ] in
  let rng = Rng.create ~seed:3 in
  let horizon = 4.0 in

  (* The gateway publishes noisy sensor values round-robin. *)
  let value = Array.make sensors 20.0 in
  ignore
    (Engine.every engine ~period:reading_period (fun () ->
         let s = Rng.int rng sensors in
         value.(s) <- value.(s) +. Rng.normal rng ~mu:0.0 ~sigma:0.5;
         (match
            Group.multicast gateway ~ann:(Annotation.Tag s) (s, value.(s))
          with
         | Ok _ | Error `Blocked -> ()
         | Error `Not_member -> ());
         ignore (Group.deliver_all gateway);
         Engine.now engine < horizon));

  (* Console 1 is healthy; console 2 freezes between t=1s and t=2.5s
     (garbage collection, page fault, antivirus — pick your poison). *)
  let latest = Array.make sensors nan in
  let healthy = List.nth consoles 0 in
  let frozen = List.nth consoles 1 in
  let consume m =
    List.iter
      (function
        | Types.Data d ->
            let s, v = d.Types.payload in
            if Group.id m = 2 then latest.(s) <- v
        | Types.View_change _ -> ())
      (Group.deliver_all m)
  in
  ignore
    (Engine.every engine ~period:0.01 (fun () ->
         consume healthy;
         let t = Engine.now engine in
         if t < 1.0 || t > 2.5 then consume frozen;
         t < horizon));
  Engine.run ~until:horizon engine;
  consume frozen;
  let backlog = Group.inbox frozen + Group.pending frozen in
  (cluster, backlog, Group.purged frozen, latest, value)

let () =
  Format.printf "--- semantic view synchrony ---@.";
  let cluster, backlog, purged, latest, truth = run ~semantic:true in
  Format.printf "frozen console: backlog after recovery = %d, purged as obsolete = %d@."
    backlog purged;
  Format.printf "sensor freshness after recovery:@.";
  Array.iteri
    (fun s v -> Format.printf "  sensor %d: console=%.2f gateway=%.2f@." s v truth.(s))
    latest;
  (match Checker.verify (Group.checker cluster) with
  | [] -> Format.printf "checker: safety holds (stale readings were provably obsolete)@."
  | vs ->
      List.iter (fun v -> print_endline (Checker.violation_to_string v)) vs;
      exit 1);
  Format.printf "@.--- plain view synchrony (no purging) ---@.";
  let _, backlog, purged, _, _ = run ~semantic:false in
  Format.printf "frozen console: backlog after recovery = %d, purged = %d@." backlog purged;
  Format.printf
    "without purging the perturbed console must chew through every stale reading@."
