(* Replicated multiplayer game server — the paper's motivating
   application (§1, §5.1).

   The primary runs the arena game and replicates each round's state
   changes to two backups through [Svs_replication.Replicated_store]
   (atomic per-round batches, k-enumeration obsolescence). One backup
   consumes slowly; purging keeps it inside the group anyway. Mid-game
   the primary crashes: the group reconfigures, the new primary
   rebuilds the arena from its replicated store and keeps the game
   running, and the survivors hold identical world state throughout.

   Run with: dune exec examples/game_replication.exe *)

module Engine = Svs_sim.Engine
module Group = Svs_core.Group
module View = Svs_core.View
module Checker = Svs_core.Checker
module Latency = Svs_net.Latency
module Arena = Svs_game.Arena
module Store = Svs_replication.Replicated_store

let game_config = { Arena.default_config with players = 4; seed = 9 }

let round_period = 1.0 /. game_config.Arena.round_rate

let () =
  let engine = Engine.create ~seed:5 () in
  let config = { Group.default_config with buffer_capacity = Some 20 } in
  let cluster =
    Group.create_cluster engine ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.002)
      ~config ()
  in
  let replicas =
    List.map (fun m -> (Group.id m, Store.attach ~k:40 m)) (Group.members cluster)
  in
  let store_of i = List.assoc i replicas in

  (* Narrate view changes. *)
  List.iter
    (fun m ->
      Group.on_installed m (fun v ->
          if Group.id m = 1 then
            Format.printf "t=%.2fs: view change -> %a@." (Engine.now engine) View.pp v))
    (Group.members cluster);

  (* The arena lives at the current primary; on fail-over the new
     primary restores it from its replicated store. *)
  let game = ref (Arena.create game_config) in
  let game_owner = ref 0 in
  let rounds_played = ref 0 in
  (* State transfer: the initial primary seeds the replicas with the
     complete starting world in one atomic batch, so a fail-over store
     is a full snapshot, not just the items that happened to change. *)
  (match
     Store.submit (store_of 0)
       (List.map (fun (id, st) -> Store.Set (id, st)) (Arena.items !game))
   with
  | Ok () -> ()
  | Error _ -> failwith "initial state transfer failed");
  let current_primary () =
    List.find_opt (fun (_, r) -> Store.is_member r && Store.role r = `Primary) replicas
  in
  let play_round () =
    match current_primary () with
    | None -> ()
    | Some (id, store) ->
        if !game_owner <> id then begin
          (* Fail-over: catch up on replicated state, then take over. *)
          Store.process store;
          game := Arena.restore game_config ~round:!rounds_played (Store.items store);
          game_owner := id;
          Format.printf "t=%.2fs: replica %d took over as primary (world: %d items)@."
            (Engine.now engine) id (List.length (Store.items store))
        end;
        let events = Arena.step !game in
        let ops =
          List.map
            (function
              | Arena.Updated (item, st) | Arena.Created (item, st) -> Store.Set (item, st)
              | Arena.Destroyed item -> Store.Remove item)
            events
        in
        if ops <> [] then (
          match Store.submit store ops with
          | Ok () -> incr rounds_played
          | Error (`Blocked | `Not_primary) -> () (* view change in flight: skip a frame *)
          | Error `Empty -> ())
  in
  let horizon = 8.0 in
  ignore
    (Engine.every engine ~period:round_period (fun () ->
         play_round ();
         Engine.now engine < horizon));

  (* Replica 1 applies promptly; replica 2 is a slow consumer. *)
  ignore
    (Engine.every engine ~period:0.005 (fun () ->
         Store.process (store_of 0);
         Store.process (store_of 1);
         Engine.now engine < horizon));
  ignore
    (Engine.every engine ~period:0.08 (fun () ->
         ignore (Store.process_one (store_of 2));
         ignore (Store.process_one (store_of 2));
         Engine.now engine < horizon));

  (* The original primary dies mid-game. *)
  ignore
    (Engine.schedule engine ~delay:4.0 (fun () ->
         Format.printf "t=%.2fs: primary (replica 0) crashes@." (Engine.now engine);
         Group.crash cluster 0));

  Engine.run ~until:horizon engine;
  (* Production stops at the horizon; let in-flight messages land, then
     drain every replica. *)
  Engine.run ~until:(horizon +. 0.5) engine;
  List.iter (fun (_, r) -> Store.process r) replicas;

  Format.printf "rounds replicated: %d@." !rounds_played;
  let r1 = store_of 1 and r2 = store_of 2 in
  Format.printf "survivor stores: %d items vs %d items, equal = %b@."
    (List.length (Store.items r1))
    (List.length (Store.items r2))
    (Store.store_equal r1 r2);
  Format.printf "slow backup: purged %d obsolete updates, applied %d batches@."
    (Group.purged (Store.member r2))
    (Store.applied_batches r2);
  match Checker.verify (Group.checker cluster) with
  | [] ->
      print_endline "checker: all SVS safety properties hold";
      if not (Store.store_equal r1 r2) then exit 1
  | violations ->
      List.iter (fun v -> print_endline (Checker.violation_to_string v)) violations;
      exit 1
