examples/monitoring.mli:
