examples/view_flush.ml: Format Stdlib Svs_experiments
