examples/view_flush.mli:
