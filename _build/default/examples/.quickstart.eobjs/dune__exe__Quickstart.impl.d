examples/quickstart.ml: Format List Svs_core Svs_net Svs_obs Svs_sim
