examples/game_replication.mli:
