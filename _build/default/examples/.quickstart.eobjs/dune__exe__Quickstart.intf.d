examples/quickstart.mli:
