examples/stock_ticker.ml: Array Float Format Fun List Printf Svs_net Svs_obs Svs_order Svs_sim
