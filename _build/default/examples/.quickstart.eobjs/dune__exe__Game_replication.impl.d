examples/game_replication.ml: Format List Svs_core Svs_game Svs_net Svs_replication Svs_sim
