(* View-change flush cost, reliable vs semantic (§3.3, §5.4).

   A producer pushes the calibrated game stream at full speed while one
   member lags. When a view change is triggered, every member must
   agree on — and deliver — the pending messages before installing the
   new view. With purging, the pending set only contains maximal
   (non-obsolete) messages, so the flush is small and the slow member
   resumes almost immediately; without purging the whole backlog must
   be flushed first.

   This is a compact, narrated version of the V1 experiment
   (`svs_cli viewlat` runs the instrumented variant).

   Run with: dune exec examples/view_flush.exe *)

module E = Svs_experiments

let () =
  Format.printf "running the reliable (plain VS) configuration...@.";
  let reliable = E.View_latency.run ~mode:E.Pipeline.Reliable () in
  Format.printf "running the semantic (SVS) configuration...@.";
  let semantic = E.View_latency.run ~mode:E.Pipeline.Semantic () in
  let report label (r : E.View_latency.result) =
    Format.printf
      "%-9s: flush=%4d msgs, backlog at slow member=%4d, purged=%4d, violations=%d@."
      label r.E.View_latency.pred_size r.E.View_latency.slow_backlog
      r.E.View_latency.purged r.E.View_latency.violations
  in
  report "reliable" reliable;
  report "semantic" semantic;
  let ratio =
    float_of_int reliable.E.View_latency.pred_size
    /. float_of_int (Stdlib.max 1 semantic.E.View_latency.pred_size)
  in
  Format.printf
    "purging shrank the view-change flush %.1fx while keeping every replica consistent@."
    ratio;
  if reliable.E.View_latency.violations + semantic.E.View_latency.violations > 0 then exit 1
