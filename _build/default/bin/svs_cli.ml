(* Command-line driver for the SVS evaluation: regenerate any table or
   figure of the paper with custom workload, seed and parameters. *)

open Cmdliner
module E = Svs_experiments

let ppf = Format.std_formatter

(* --- common options --- *)

let workload =
  let parse = function
    | "synthetic" -> Ok E.Spec.Synthetic
    | "arena" -> Ok E.Spec.Arena
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S (synthetic|arena)" s))
  in
  let print ppf w = E.Spec.pp_workload ppf w in
  Arg.conv (parse, print)

let spec_term =
  let workload_arg =
    Arg.(
      value
      & opt workload E.Spec.Synthetic
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:"Workload: $(b,synthetic) (calibrated generator) or $(b,arena) (game).")
  in
  let seed =
    Arg.(value & opt int 2002 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let rounds =
    Arg.(
      value & opt int 11696
      & info [ "rounds" ] ~docv:"N" ~doc:"Trace length in game rounds (paper: 11696).")
  in
  let make workload seed rounds = { E.Spec.default with workload; seed; rounds } in
  Term.(const make $ workload_arg $ seed $ rounds)

let csv_term =
  Arg.(
    value & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV to $(docv).")

let write_csv path series ~x_label =
  let oc = open_out path in
  output_string oc (Svs_stats.Series.to_csv ~x_label series);
  close_out oc;
  Format.printf "wrote %s@." path

let buffer_term =
  Arg.(
    value & opt int 15
    & info [ "b"; "buffer" ] ~docv:"MSGS" ~doc:"Protocol buffer size in messages.")

(* --- commands --- *)

let cmd name ~doc run = Cmd.v (Cmd.info name ~doc) run

let t1 =
  cmd "t1" ~doc:"Session statistics of §5.2 (paper vs measured)."
    Term.(const (fun spec -> E.Table_stats.print ~spec ppf ()) $ spec_term)

let fig3a =
  cmd "fig3a" ~doc:"Figure 3(a): frequency of item modifications by rank."
    Term.(
      const (fun spec csv ->
          let series = [ E.Fig3.fig3a ~spec () ] in
          Svs_stats.Series.render ~x_label:"item rank" ~y_format:(Printf.sprintf "%.2f") ppf
            series;
          Option.iter (fun path -> write_csv path series ~x_label:"item rank") csv)
      $ spec_term $ csv_term)

let fig3b =
  cmd "fig3b" ~doc:"Figure 3(b): obsolescence distance distribution."
    Term.(
      const (fun spec csv ->
          let series = [ E.Fig3.fig3b ~spec () ] in
          Svs_stats.Series.render ~x_label:"distance" ~y_format:(Printf.sprintf "%.2f") ppf
            series;
          Option.iter (fun path -> write_csv path series ~x_label:"distance") csv)
      $ spec_term $ csv_term)

let fig4 =
  cmd "fig4" ~doc:"Figure 4: producer idle % and buffer occupancy vs consumer rate."
    Term.(
      const (fun spec buffer csv ->
          E.Fig4.print ~spec ~buffer ppf ();
          Option.iter
            (fun path ->
              let points = E.Fig4.sweep ~spec ~buffer () in
              write_csv (path ^ ".idle.csv") (E.Fig4.fig4a points) ~x_label:"consumer_msgs";
              write_csv (path ^ ".occupancy.csv") (E.Fig4.fig4b points)
                ~x_label:"consumer_msgs")
            csv)
      $ spec_term $ buffer_term $ csv_term)

let fig5 =
  cmd "fig5" ~doc:"Figure 5: threshold rate and tolerated perturbation vs buffer size."
    Term.(
      const (fun spec csv ->
          E.Fig5.print ~spec ppf ();
          Option.iter
            (fun path ->
              let data = E.Fig5.sweep ~spec () in
              write_csv (path ^ ".threshold.csv") (E.Fig5.fig5a data) ~x_label:"buffer";
              write_csv (path ^ ".perturbation.csv") (E.Fig5.fig5b data) ~x_label:"buffer")
            csv)
      $ spec_term $ csv_term)

let v1 =
  cmd "viewlat" ~doc:"V1: view-change flush cost and latency, reliable vs semantic."
    Term.(const (fun spec -> E.View_latency.print ~spec ppf ()) $ spec_term)

let a1 =
  cmd "ablation" ~doc:"A1: obsolescence-encoding ablation (tagging/enumeration/k-enum)."
    Term.(const (fun spec -> E.Ablation.print ~spec ppf ()) $ spec_term)

let a2 =
  cmd "protocol" ~doc:"A2: full-protocol validation of the Figure 4(a) shape."
    Term.(const (fun spec -> E.Protocol_pipeline.print ~spec ppf ()) $ spec_term)

let a34 =
  cmd "alternatives" ~doc:"A3/A4: exclusion / big buffers / deadline drop / SVS comparison."
    Term.(const (fun spec -> E.Alternatives.print ~spec ppf ()) $ spec_term)

let a5 =
  cmd "lastresort" ~doc:"A5: overflow exclusion — purging first, expulsion when not enough."
    Term.(const (fun spec -> E.Last_resort.print ~spec ppf ()) $ spec_term)

let a6 =
  cmd "scaling" ~doc:"A6: player-count scaling of the game workload."
    Term.(const (fun (_ : E.Spec.t) -> E.Scaling.print ppf ()) $ spec_term)

let claims =
  cmd "claims" ~doc:"Evaluate every qualitative paper claim against fresh measurements."
    Term.(const (fun spec -> E.Claims.print ~spec ppf ()) $ spec_term)

let all =
  cmd "all" ~doc:"Run the complete evaluation (every table and figure)."
    Term.(
      const (fun spec ->
          E.Table_stats.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.Fig3.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.Fig4.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.Fig5.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.View_latency.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.Ablation.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.Protocol_pipeline.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.Alternatives.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.Last_resort.print ~spec ppf ();
          Format.fprintf ppf "@.";
          E.Scaling.print ppf ())
      $ spec_term)

let main =
  let doc = "Semantic View Synchrony (DSN 2002) evaluation driver" in
  let info = Cmd.info "svs_cli" ~version:"1.0.0" ~doc in
  Cmd.group info [ t1; fig3a; fig3b; fig4; fig5; v1; a1; a2; a34; a5; a6; claims; all ]

let () = exit (Cmd.eval main)
