(** Deterministic pseudo-random number generator and samplers.

    A SplitMix64 generator: fast, 64-bit state, and fully reproducible
    from an integer seed, independent of the OCaml stdlib [Random]
    state. All simulation randomness must flow through a value of this
    type so that experiments are replayable with [--seed]. *)

type t

val create : seed:int -> t

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, advancing [t].
    Streams of the two generators are (statistically) independent. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample (Box–Muller). *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; >= 0.
    [p] must be in (0, 1]. *)

val poisson : t -> lambda:float -> int
(** Poisson sample by inversion; suitable for small/moderate [lambda]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

(** Zipf(s) sampler over ranks [1..n] with precomputed CDF. *)
module Zipf : sig
  type rng := t
  type t

  val create : n:int -> s:float -> t
  (** [create ~n ~s] prepares a sampler where rank [k] has probability
      proportional to [1 / k^s]. *)

  val sample : t -> rng -> int
  (** A rank in [\[1, n\]]. *)

  val probability : t -> int -> float
  (** [probability z k] is the probability of rank [k]. *)
end
