lib/sim/rng.mli:
