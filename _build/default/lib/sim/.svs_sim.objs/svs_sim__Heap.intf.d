lib/sim/heap.mli:
