(** Imperative binary min-heap over an arbitrary element type.

    The heap is parameterised by a strict "less than or equal" ordering
    supplied at creation time. Used by {!Engine} as the event queue and
    available to other libraries needing a priority queue. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~leq ()] is an empty heap ordered by [leq] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Iterates in unspecified (heap) order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] is all elements in ascending order; O(n log n),
    does not modify [h]. *)
