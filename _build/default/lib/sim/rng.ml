type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finaliser: xor-shift-multiply mixing of the raw counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep the top 62 bits so the result fits OCaml's int positively. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits in [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = float t 1.0 < p

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let poisson t ~lambda =
  if lambda < 0.0 then invalid_arg "Rng.poisson: negative lambda";
  let ell = exp (-.lambda) in
  let rec loop k p =
    let p = p *. float t 1.0 in
    if p <= ell then k else loop (k + 1) p
  in
  loop 0 1.0

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

module Zipf = struct
  type t = { cdf : float array }
  (* cdf.(k-1) = P(rank <= k); binary search on sample. *)

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    cdf.(n - 1) <- 1.0;
    { cdf }

  let sample z rng =
    let u = float rng 1.0 in
    (* Smallest index with cdf >= u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if z.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    search 0 (Array.length z.cdf - 1) + 1

  let probability z k =
    if k < 1 || k > Array.length z.cdf then invalid_arg "Zipf.probability: rank out of range";
    if k = 1 then z.cdf.(0) else z.cdf.(k - 1) -. z.cdf.(k - 2)
end
