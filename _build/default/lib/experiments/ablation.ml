module Trace = Svs_workload.Trace
module Stream = Svs_workload.Stream
module Annotation = Svs_obs.Annotation
module Msg_id = Svs_obs.Msg_id
module Enum_builder = Svs_obs.Enum_builder
module Series = Svs_stats.Series

type encoding = Tagging | Enumeration | Kenumeration

let encoding_label = function
  | Tagging -> "item tagging"
  | Enumeration -> "message enumeration"
  | Kenumeration -> "k-enumeration"

type row = {
  encoding : encoding;
  threshold : float;
  purged_at_30 : int;
  bytes_per_message : float;
}

(* Single-item re-annotation shared by tagging and enumeration: one
   message per op, updates purgeable, creations/destructions reliable. *)
let single_item_stream ~annotate_update trace =
  let messages = ref [] in
  let sn = ref 0 in
  Trace.iter_rounds
    (fun round_ix { Trace.ops; _ } ->
      let base = float_of_int round_ix /. trace.Trace.round_rate in
      let n = List.length ops in
      let dt =
        if n = 0 then 0.0 else 1.0 /. trace.Trace.round_rate /. float_of_int (n + 1)
      in
      List.iteri
        (fun j op ->
          let kind, ann =
            match op.Trace.kind with
            | Trace.Update -> (Stream.Update, annotate_update ~sn:!sn ~item:op.Trace.item)
            | Trace.Create -> (Stream.Create, Annotation.Unrelated)
            | Trace.Destroy -> (Stream.Destroy, Annotation.Unrelated)
          in
          messages :=
            {
              Stream.sn = !sn;
              round = round_ix;
              time = base +. (float_of_int (j + 1) *. dt);
              item = Some op.Trace.item;
              kind;
              ann;
            }
            :: !messages;
          incr sn)
        ops)
    trace;
  Array.of_list (List.rev !messages)

let annotate encoding ?(k = 30) ?(window = 16) trace =
  match encoding with
  | Kenumeration -> Stream.of_trace ~k trace
  | Tagging ->
      single_item_stream trace ~annotate_update:(fun ~sn:_ ~item -> Annotation.Tag item)
  | Enumeration ->
      let builder = Enum_builder.create ~window () in
      let last_update : (int, int) Hashtbl.t = Hashtbl.create 64 in
      single_item_stream trace ~annotate_update:(fun ~sn ~item ->
          let id = Msg_id.make ~sender:0 ~sn in
          let direct =
            match Hashtbl.find_opt last_update item with
            | Some prev -> [ Msg_id.make ~sender:0 ~sn:prev ]
            | None -> []
          in
          Hashtbl.replace last_update item sn;
          Annotation.Enum (Enum_builder.next builder ~id ~direct))

let bytes_per_message encoding ~k messages =
  match encoding with
  | Tagging -> 4.0
  | Kenumeration -> float_of_int ((k + 7) / 8)
  | Enumeration ->
      let total_preds =
        Array.fold_left
          (fun acc (m : Stream.message) ->
            match m.Stream.ann with
            | Annotation.Enum preds -> acc + List.length preds
            | Annotation.Tag _ | Annotation.Kenum _ | Annotation.Unrelated -> acc)
          0 messages
      in
      8.0 *. float_of_int total_preds /. float_of_int (Array.length messages)

let rows ?(spec = Spec.default) ?(buffer = 15) () =
  let trace = Spec.trace spec in
  let k = Stdlib.max 8 (spec.Spec.k_factor * buffer) in
  List.map
    (fun encoding ->
      let messages = annotate encoding ~k trace in
      let threshold = Pipeline.threshold ~messages ~buffer ~mode:Pipeline.Semantic () in
      let at30 =
        Pipeline.run ~messages { Pipeline.buffer; consumer_rate = 30.0; mode = Pipeline.Semantic }
      in
      {
        encoding;
        threshold;
        purged_at_30 = at30.Pipeline.purged;
        bytes_per_message = bytes_per_message encoding ~k messages;
      })
    [ Tagging; Enumeration; Kenumeration ]

let print ?(spec = Spec.default) ppf () =
  Format.fprintf ppf
    "A1: obsolescence-representation ablation (buffer 15, semantic pipeline)@.";
  let rws = rows ~spec () in
  Series.render_table ppf
    ~header:[ "encoding"; "threshold (msg/s)"; "purged @30msg/s"; "bytes/msg" ]
    ~rows:
      (List.map
         (fun r ->
           [
             encoding_label r.encoding;
             Printf.sprintf "%.1f" r.threshold;
             string_of_int r.purged_at_30;
             Printf.sprintf "%.1f" r.bytes_per_message;
           ])
         rws)
