module Series = Svs_stats.Series
module Histogram = Svs_stats.Histogram
module Trace_stats = Svs_workload.Trace_stats

let fig3a ?(spec = Spec.default) ?(max_rank = 50) () =
  let trace = Spec.trace spec in
  let ranks = Trace_stats.rank_frequencies trace in
  let points =
    List.filter_map
      (fun (rank, pct) -> if rank <= max_rank then Some (float_of_int rank, pct) else None)
      ranks
  in
  Series.make ~label:"% of rounds" points

let fig3b ?(spec = Spec.default) ?(max_distance = 20) () =
  let messages = Spec.messages spec in
  let h = Trace_stats.obsolescence_distances messages in
  let total = float_of_int (Histogram.count h) in
  let points =
    List.filter_map
      (fun (d, c) ->
        if d <= max_distance then Some (float_of_int d, 100.0 *. float_of_int c /. total)
        else None)
      (Histogram.buckets h)
  in
  Series.make ~label:"% of messages" points

let print ?(spec = Spec.default) ppf () =
  Format.fprintf ppf "Figure 3(a): frequency of item modifications (workload: %a)@."
    Spec.pp_workload spec.Spec.workload;
  Series.render ~x_label:"item rank"
    ~y_format:(Printf.sprintf "%.2f")
    ppf
    [ fig3a ~spec () ];
  Format.fprintf ppf "@.Figure 3(b): obsolescence distance@.";
  Series.render ~x_label:"distance"
    ~y_format:(Printf.sprintf "%.2f")
    ppf
    [ fig3b ~spec () ]
