type workload = Synthetic | Arena

type t = {
  workload : workload;
  seed : int;
  rounds : int;
  k_factor : int;
}

let default = { workload = Synthetic; seed = 2002; rounds = 11696; k_factor = 2 }

let trace t =
  match t.workload with
  | Synthetic ->
      Svs_workload.Synthetic.generate
        { Svs_workload.Synthetic.default with rounds = t.rounds; seed = t.seed }
  | Arena ->
      Svs_game.Arena.simulate ~rounds:t.rounds
        { Svs_game.Arena.default_config with seed = t.seed }

let messages ?(buffer = 15) t =
  let k = Stdlib.max 8 (t.k_factor * buffer) in
  Svs_workload.Stream.of_trace ~k (trace t)

let pp_workload ppf = function
  | Synthetic -> Format.pp_print_string ppf "synthetic (calibrated)"
  | Arena -> Format.pp_print_string ppf "arena game"
