(** A1 — ablation of the obsolescence representations of §4.2.

    The same trace is annotated three ways — item tagging, message
    enumeration (with a bounded window), and k-enumeration batches —
    and replayed through the §5.3 pipeline. The experiment compares
    purging effectiveness (threshold consumer rate) and the wire-size
    cost of each representation.

    Tagging and enumeration are applied per single-item update (they
    cannot express composite-update atomicity, which is why the paper
    builds k-enumeration); creations and destructions stay reliable. *)

type encoding = Tagging | Enumeration | Kenumeration

val encoding_label : encoding -> string

type row = {
  encoding : encoding;
  threshold : float;  (** msg/s at buffer 15, 5% disturbance. *)
  purged_at_30 : int;  (** Purged messages at a 30 msg/s consumer. *)
  bytes_per_message : float;  (** Representation cost estimate. *)
}

val annotate : encoding -> ?k:int -> ?window:int -> Svs_workload.Trace.t -> Svs_workload.Stream.message array
(** Re-annotate a trace under the given encoding ([k], default 30, for
    k-enumeration; [window], default 16, for enumeration). *)

val rows : ?spec:Spec.t -> ?buffer:int -> unit -> row list

val print : ?spec:Spec.t -> Format.formatter -> unit -> unit
