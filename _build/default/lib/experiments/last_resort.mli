(** A5 — reconfiguration as a last resort.

    The paper's §1/§2.2 narrative: SVS "makes it possible to avoid
    group reconfigurations" for transient perturbations, while "if
    purging of obsolete messages is not enough to overcome the
    perturbation, reconfiguration can still happen as the dynamic
    nature of membership is preserved".

    This experiment runs the full stack with overflow-triggered
    exclusion armed and freezes one member once, for increasing
    durations. The claim to observe: the reliable group expels the
    member at much shorter freezes than the semantic group — purging
    widens the band of perturbations survived without losing a
    replica. *)

type point = {
  freeze : float;  (** Perturbation length (s). *)
  reliable_excluded : bool;
  semantic_excluded : bool;
  reliable_peak_backlog : int;
  semantic_peak_backlog : int;
}

val sweep :
  ?spec:Spec.t ->
  ?buffer:int ->
  ?backlog_limit:int ->
  ?freezes:float list ->
  unit ->
  point list
(** Defaults: delivery-queue buffer 60 (purging capacity scales the tolerated freeze, Figure 5b), backlog limit 60, freezes 0.25–8 s. Each run
    is checker-verified (raises on violation). *)

val print : ?spec:Spec.t -> Format.formatter -> unit -> unit
