(** Figure 3 — characterisation of access to application state.

    (a) Frequency of item modifications by item rank (% of rounds).
    (b) Distribution of the distance to the closest related message. *)

val fig3a : ?spec:Spec.t -> ?max_rank:int -> unit -> Svs_stats.Series.t
(** Default [max_rank] 50, as in the paper's plot. *)

val fig3b : ?spec:Spec.t -> ?max_distance:int -> unit -> Svs_stats.Series.t
(** Percentage of obsoleted messages by distance; default
    [max_distance] 20 as in the paper's plot. *)

val print : ?spec:Spec.t -> Format.formatter -> unit -> unit
(** Render both sub-figures as text tables. *)
