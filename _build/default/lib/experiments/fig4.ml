module Series = Svs_stats.Series

type point = {
  rate : float;
  reliable : Pipeline.result;
  semantic : Pipeline.result;
}

let default_rates =
  [ 10.; 20.; 28.; 30.; 40.; 50.; 60.; 73.; 80.; 90.; 100.; 110.; 120.; 130.; 140. ]

let sweep ?(spec = Spec.default) ?(buffer = 15) ?(rates = default_rates) () =
  let messages = Spec.messages ~buffer spec in
  let run mode rate =
    Pipeline.run ~messages { Pipeline.buffer; consumer_rate = rate; mode }
  in
  List.map
    (fun rate ->
      { rate; reliable = run Pipeline.Reliable rate; semantic = run Pipeline.Semantic rate })
    rates

let idle (r : Pipeline.result) = 100.0 *. (1.0 -. r.Pipeline.blocked_fraction)

let fig4a points =
  let series mode extract =
    Series.make ~label:(Pipeline.mode_label mode)
      (List.map (fun p -> (p.rate, extract p)) points)
  in
  [
    series Pipeline.Reliable (fun p -> idle p.reliable);
    series Pipeline.Semantic (fun p -> idle p.semantic);
  ]

let fig4b points =
  let series mode extract =
    Series.make ~label:(Pipeline.mode_label mode)
      (List.map (fun p -> (p.rate, extract p)) points)
  in
  [
    series Pipeline.Reliable (fun p -> p.reliable.Pipeline.mean_occupancy);
    series Pipeline.Semantic (fun p -> p.semantic.Pipeline.mean_occupancy);
  ]

let print ?(spec = Spec.default) ?(buffer = 15) ppf () =
  let points = sweep ~spec ~buffer () in
  Format.fprintf ppf
    "Figure 4(a): producer idle %% vs consumer rate (buffer=%d msgs, workload: %a)@." buffer
    Spec.pp_workload spec.Spec.workload;
  Series.render ~x_label:"consumer msg/s" ~y_format:(Printf.sprintf "%.1f") ppf (fig4a points);
  Format.fprintf ppf "@.Figure 4(b): buffer occupancy (msgs) vs consumer rate@.";
  Series.render ~x_label:"consumer msg/s" ~y_format:(Printf.sprintf "%.2f") ppf (fig4b points)
