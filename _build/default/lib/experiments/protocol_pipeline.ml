module Engine = Svs_sim.Engine
module Group = Svs_core.Group
module Checker = Svs_core.Checker
module Latency = Svs_net.Latency
module Stream = Svs_workload.Stream
module Series = Svs_stats.Series

type point = {
  rate : float;
  blocked_fraction : float;
  purged : int;
  backlog : int;
  violations : int;
}

let run_one ~spec ~buffer ~duration ~mode ~rate =
  let messages = Spec.messages ~buffer spec in
  let engine = Engine.create ~seed:spec.Spec.seed () in
  let config =
    {
      Group.default_config with
      semantic = (mode = Pipeline.Semantic);
      buffer_capacity = Some buffer;
      stability_period = Some 0.25;
    }
  in
  let cluster =
    Group.create_cluster engine ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001)
      ~config ()
  in
  let producer = Group.member cluster 0 in
  let fast = Group.member cluster 1 in
  let slow = Group.member cluster 2 in
  let blocked_time = ref 0.0 in
  let i = ref 0 in
  let limit =
    let n = Array.length messages in
    let rec scan ix =
      if ix >= n || messages.(ix).Stream.time > duration then ix else scan (ix + 1)
    in
    scan 0
  in
  (* Producer with a bounded outgoing buffer: it retries while the slow
     member holds too many of its messages, accumulating blocked time
     (the flow-control stall of §5.3). *)
  let retry = 0.005 in
  let rec emit_next () =
    if !i < limit then begin
      let m = messages.(!i) in
      let at = Float.max m.Stream.time (Engine.now engine) in
      ignore (Engine.schedule_at engine ~time:at (fun () -> attempt m) : Engine.handle)
    end
  and attempt m =
    if Group.inflight_from slow ~src:0 >= buffer || Group.is_blocked producer then begin
      blocked_time := !blocked_time +. retry;
      ignore (Engine.schedule engine ~delay:retry (fun () -> attempt m) : Engine.handle)
    end
    else
      match Group.multicast producer ~ann:m.Stream.ann m.Stream.sn with
      | Ok _ ->
          incr i;
          emit_next ()
      | Error `Blocked ->
          blocked_time := !blocked_time +. retry;
          ignore (Engine.schedule engine ~delay:retry (fun () -> attempt m) : Engine.handle)
      | Error `Not_member -> ()
  in
  emit_next ();
  ignore
    (Engine.every engine ~period:0.005 (fun () ->
         ignore (Group.deliver_all producer);
         ignore (Group.deliver_all fast);
         Engine.now engine < duration +. 1.0)
      : Engine.handle);
  ignore
    (Engine.every engine ~period:(1.0 /. rate) (fun () ->
         ignore (Group.deliver slow);
         Engine.now engine < duration +. 1.0)
      : Engine.handle);
  Engine.run ~until:(duration +. 1.0) engine;
  let backlog = Group.inbox slow + Group.pending slow in
  List.iter (fun m -> ignore (Group.deliver_all m)) (Group.members cluster);
  {
    rate;
    blocked_fraction = !blocked_time /. duration;
    purged = Group.purged slow;
    backlog;
    violations = List.length (Checker.verify (Group.checker cluster));
  }

let default_rates = [ 20.; 30.; 40.; 60.; 80.; 100. ]

let sweep ?(spec = Spec.default) ?(buffer = 15) ?(duration = 60.0) ?(rates = default_rates)
    ~mode () =
  List.map (fun rate -> run_one ~spec ~buffer ~duration ~mode ~rate) rates

let print ?(spec = Spec.default) ppf () =
  Format.fprintf ppf
    "A2: full-protocol validation of Figure 4(a)'s shape (3 members, buffer 15, 60 s)@.";
  let rel = sweep ~spec ~mode:Pipeline.Reliable () in
  let sem = sweep ~spec ~mode:Pipeline.Semantic () in
  let series label points =
    Series.make ~label
      (List.map (fun p -> (p.rate, 100.0 *. (1.0 -. p.blocked_fraction))) points)
  in
  Series.render ~x_label:"consumer msg/s" ~y_format:(Printf.sprintf "%.1f") ppf
    [ series "reliable idle%" rel; series "semantic idle%" sem ];
  let violations =
    List.fold_left (fun acc p -> acc + p.violations) 0 (rel @ sem)
  in
  Format.fprintf ppf "checker violations across runs: %d@." violations
