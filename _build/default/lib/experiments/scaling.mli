(** A6 — player-count scaling (the paper's §5.2 closing observation).

    "We have also collected data with other numbers of players. It can
    be observed that when more players join the game the message rate
    increases, the share of messages that never become obsolete
    decreases, but the distance between related messages increases.
    This suggests that higher purging rates would be possible than
    those presented here, although at the expense of larger buffer
    sizes."

    This experiment reruns the arena server with growing player counts
    and measures exactly those quantities, plus the semantic threshold
    at a small and a large buffer to show the buffer-size trade-off. *)

type row = {
  players : int;
  message_rate : float;  (** msg/s *)
  never_obsolete : float;  (** fraction *)
  p90_distance : int;  (** 90th percentile obsolescence distance *)
  semantic_threshold_small : float;  (** buffer 15 *)
  semantic_threshold_large : float;  (** buffer 60 *)
}

val sweep : ?rounds:int -> ?players:int list -> ?seed:int -> unit -> row list
(** Defaults: 6000 rounds, players [2;5;10;20]. *)

val print : Format.formatter -> unit -> unit
