(** V1 — view-change cost under load with a slow member, reliable vs
    semantic (the §3.3/§5.4 claim that SVS keeps buffers small and so
    "has no negative impact on the latency of the view change").

    A full protocol stack (group + detector + consensus + stability
    gossip) runs the game stream from one member while another member
    consumes slowly behind a bounded buffer. Mid-run, a voluntary view
    change is triggered; the experiment measures the PRED flush size
    and the trigger→installation latency. *)

type result = {
  mode : Pipeline.mode;
  pred_size : int;  (** Messages in the agreed flush (max over members). *)
  latency : float;  (** Seconds from trigger to last installation. *)
  slow_backlog : int;  (** Slow member's held-back messages at trigger. *)
  purged : int;  (** Total purged at the slow member. *)
  violations : int;  (** Checker violations (must be 0). *)
}

val run :
  ?spec:Spec.t ->
  ?buffer:int ->
  ?consumer_rate:float ->
  ?trigger_at:float ->
  mode:Pipeline.mode ->
  unit ->
  result
(** Defaults: buffer 15, slow consumer 30 msg/s, trigger at 20 s. *)

val print : ?spec:Spec.t -> Format.formatter -> unit -> unit
(** Run both modes and render the comparison. *)
