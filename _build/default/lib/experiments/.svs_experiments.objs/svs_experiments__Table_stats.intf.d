lib/experiments/table_stats.mli: Format Spec
