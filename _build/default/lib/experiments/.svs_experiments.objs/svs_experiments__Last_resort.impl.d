lib/experiments/last_resort.ml: Array Float Format List Printf Spec Stdlib String Svs_core Svs_net Svs_sim Svs_stats Svs_workload
