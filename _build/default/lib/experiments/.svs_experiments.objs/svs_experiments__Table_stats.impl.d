lib/experiments/table_stats.ml: Format List Printf Spec Svs_stats Svs_workload
