lib/experiments/pipeline.ml: Array Float Stdlib Svs_core Svs_obs Svs_stats Svs_workload
