lib/experiments/fig4.ml: Format List Pipeline Printf Spec Svs_stats
