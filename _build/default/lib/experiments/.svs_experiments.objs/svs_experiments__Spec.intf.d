lib/experiments/spec.mli: Format Svs_workload
