lib/experiments/fig5.ml: Format List Pipeline Printf Spec Stdlib Svs_stats Svs_workload
