lib/experiments/view_latency.mli: Format Pipeline Spec
