lib/experiments/scaling.ml: Ablation Format List Pipeline Printf Stdlib Svs_game Svs_stats Svs_workload
