lib/experiments/claims.ml: Fig4 Fig5 Format Last_resort List Pipeline Printf Spec Svs_stats Svs_workload View_latency
