lib/experiments/alternatives.ml: Array Float Format List Printf Spec Stdlib Svs_core Svs_obs Svs_stats Svs_workload
