lib/experiments/last_resort.mli: Format Spec
