lib/experiments/spec.ml: Format Stdlib Svs_game Svs_workload
