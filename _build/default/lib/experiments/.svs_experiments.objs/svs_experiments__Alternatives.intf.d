lib/experiments/alternatives.mli: Format Spec
