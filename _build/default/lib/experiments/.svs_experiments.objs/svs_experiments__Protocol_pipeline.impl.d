lib/experiments/protocol_pipeline.ml: Array Float Format List Pipeline Printf Spec Svs_core Svs_net Svs_sim Svs_stats Svs_workload
