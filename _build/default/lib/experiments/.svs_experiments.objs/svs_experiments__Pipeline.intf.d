lib/experiments/pipeline.mli: Svs_workload
