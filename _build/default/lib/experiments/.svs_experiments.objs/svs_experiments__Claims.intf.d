lib/experiments/claims.mli: Format Spec
