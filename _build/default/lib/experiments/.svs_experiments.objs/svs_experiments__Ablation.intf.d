lib/experiments/ablation.mli: Format Spec Svs_workload
