lib/experiments/ablation.ml: Array Format Hashtbl List Pipeline Printf Spec Stdlib Svs_obs Svs_stats Svs_workload
