lib/experiments/fig3.ml: Format List Printf Spec Svs_stats Svs_workload
