lib/experiments/protocol_pipeline.mli: Format Pipeline Spec
