lib/experiments/view_latency.ml: Array Float Format List Pipeline Printf Spec Stdlib Svs_core Svs_net Svs_sim Svs_stats Svs_workload
