lib/experiments/fig5.mli: Format Spec Svs_stats
