lib/experiments/fig4.mli: Format Pipeline Spec Svs_stats
