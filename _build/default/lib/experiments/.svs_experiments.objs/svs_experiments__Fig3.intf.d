lib/experiments/fig3.mli: Format Spec Svs_stats
