(** Shared experiment configuration: which workload feeds an
    experiment and the paper-derived defaults. *)

type workload =
  | Synthetic  (** Calibrated generator ({!Svs_workload.Synthetic}). *)
  | Arena  (** Organic trace from the {!Svs_game.Arena} server. *)

type t = {
  workload : workload;
  seed : int;
  rounds : int;
  k_factor : int;
      (** k-enumeration window = [k_factor * buffer] (paper: 2). *)
}

val default : t

val trace : t -> Svs_workload.Trace.t

val messages : ?buffer:int -> t -> Svs_workload.Stream.message array
(** Message stream with k sized from [buffer] (default 15). *)

val pp_workload : Format.formatter -> workload -> unit
