module Series = Svs_stats.Series

type point = {
  buffer : int;
  reliable_threshold : float;
  semantic_threshold : float;
  reliable_perturbation : float;
  semantic_perturbation : float;
}

let default_buffers = [ 4; 8; 12; 16; 20; 24; 28 ]

let sweep ?(spec = Spec.default) ?(buffers = default_buffers) () =
  let trace = Spec.trace spec in
  let points =
    List.map
      (fun buffer ->
        (* The paper sizes k to twice the buffer, so the stream is
           re-annotated per buffer size. *)
        let k = Stdlib.max 8 (spec.Spec.k_factor * buffer) in
        let messages = Svs_workload.Stream.of_trace ~k trace in
        {
          buffer;
          reliable_threshold =
            Pipeline.threshold ~messages ~buffer ~mode:Pipeline.Reliable ();
          semantic_threshold =
            Pipeline.threshold ~messages ~buffer ~mode:Pipeline.Semantic ();
          reliable_perturbation =
            Pipeline.perturbation_tolerance ~messages ~buffer ~mode:Pipeline.Reliable ();
          semantic_perturbation =
            Pipeline.perturbation_tolerance ~messages ~buffer ~mode:Pipeline.Semantic ();
        })
      buffers
  in
  let avg_rate =
    let messages = Svs_workload.Stream.of_trace ~k:30 trace in
    Svs_workload.Stream.mean_rate messages trace
  in
  (points, avg_rate)

let fig5a (points, avg_rate) =
  [
    Series.make ~label:"reliable"
      (List.map (fun p -> (float_of_int p.buffer, p.reliable_threshold)) points);
    Series.make ~label:"semantic"
      (List.map (fun p -> (float_of_int p.buffer, p.semantic_threshold)) points);
    Series.make ~label:"avg input rate"
      (List.map (fun p -> (float_of_int p.buffer, avg_rate)) points);
  ]

let fig5b (points, _) =
  [
    Series.make ~label:"reliable"
      (List.map (fun p -> (float_of_int p.buffer, 1000.0 *. p.reliable_perturbation)) points);
    Series.make ~label:"semantic"
      (List.map (fun p -> (float_of_int p.buffer, 1000.0 *. p.semantic_perturbation)) points);
  ]

let print ?(spec = Spec.default) ppf () =
  let data = sweep ~spec () in
  Format.fprintf ppf
    "Figure 5(a): threshold consumer rate (msg/s, <=5%% producer disturbance) vs buffer \
     size (workload: %a)@."
    Spec.pp_workload spec.Spec.workload;
  Series.render ~x_label:"buffer (msg)" ~y_format:(Printf.sprintf "%.1f") ppf (fig5a data);
  Format.fprintf ppf "@.Figure 5(b): tolerated perturbation (ms) vs buffer size@.";
  Series.render ~x_label:"buffer (msg)" ~y_format:(Printf.sprintf "%.0f") ppf (fig5b data)
