module Series = Svs_stats.Series
module Trace_stats = Svs_workload.Trace_stats
module Histogram = Svs_stats.Histogram

type verdict = {
  id : string;
  claim : string;
  source : string;
  holds : bool;
  detail : string;
}

let default_spec = { Spec.default with Spec.rounds = 4000 }

let evaluate ?spec () =
  let spec = match spec with Some s -> s | None -> default_spec in
  let trace = Spec.trace spec in
  let messages = Svs_workload.Stream.of_trace ~k:30 trace in
  let summary = Trace_stats.summarise trace messages in
  let avg_rate = summary.Trace_stats.message_rate in

  (* Shared measurements. *)
  let fig5, _ = Fig5.sweep ~spec ~buffers:[ 4; 16; 28 ] () in
  let f5 buffer = List.find (fun (p : Fig5.point) -> p.Fig5.buffer = buffer) fig5 in
  let fig4 = Fig4.sweep ~spec ~buffer:15 ~rates:[ 30.; 120. ] () in
  let f4 rate = List.find (fun (p : Fig4.point) -> p.Fig4.rate = rate) fig4 in
  let v1_rel = View_latency.run ~spec ~mode:Pipeline.Reliable () in
  let v1_sem = View_latency.run ~spec ~mode:Pipeline.Semantic () in

  let claims =
    [
      (let h = Trace_stats.obsolescence_distances messages in
       let within = 100.0 *. Histogram.fraction_le h 10 in
       {
         id = "C1";
         claim = "Related messages are usually close together (often within 10)";
         source = "§5.2, Figure 3(b)";
         holds = within > 50.0;
         detail = Printf.sprintf "%.0f%% of obsoleted messages covered within 10 msgs" within;
       });
      (let p = f5 28 in
       {
         id = "C2";
         claim = "The reliable threshold never drops below the average input rate";
         source = "§5.4, Figure 5(a)";
         holds =
           List.for_all
             (fun (p : Fig5.point) -> p.Fig5.reliable_threshold >= avg_rate *. 0.9)
             fig5;
         detail =
           Printf.sprintf "reliable threshold at buffer 28: %.1f vs avg rate %.1f msg/s"
             p.Fig5.reliable_threshold avg_rate;
       });
      (let p = f5 28 in
       {
         id = "C3";
         claim = "With purging, slower receivers than the average rate are accommodated";
         source = "§5.4, Figure 5(a)";
         holds = p.Fig5.semantic_threshold < avg_rate;
         detail =
           Printf.sprintf "semantic threshold at buffer 28: %.1f vs avg rate %.1f msg/s"
             p.Fig5.semantic_threshold avg_rate;
       });
      (let p = f5 4 in
       {
         id = "C4";
         claim = "SVS is not effective for very small buffers (obsolescence distance)";
         source = "§5.4, Figure 5(a)";
         holds = p.Fig5.semantic_threshold > p.Fig5.reliable_threshold *. 0.7;
         detail =
           Printf.sprintf "buffer 4: semantic %.1f ~ reliable %.1f msg/s"
             p.Fig5.semantic_threshold p.Fig5.reliable_threshold;
       });
      (let p = f5 28 in
       {
         id = "C5";
         claim = "SVS tolerates longer perturbations with the same buffer space";
         source = "§5.4, Figure 5(b)";
         holds = p.Fig5.semantic_perturbation > 1.3 *. p.Fig5.reliable_perturbation;
         detail =
           Printf.sprintf "buffer 28: %.0f ms vs %.0f ms"
             (1000.0 *. p.Fig5.semantic_perturbation)
             (1000.0 *. p.Fig5.reliable_perturbation);
       });
      (let slow = f4 30. and fast = f4 120. in
       {
         id = "C6";
         claim = "Purging leaves the producer undisturbed at rates that stall reliable delivery";
         source = "§5.4, Figure 4(a)";
         holds =
           slow.Fig4.semantic.Pipeline.blocked_fraction
             < slow.Fig4.reliable.Pipeline.blocked_fraction /. 2.0
           && fast.Fig4.reliable.Pipeline.blocked_fraction < 0.02;
         detail =
           Printf.sprintf "at 30 msg/s: semantic blocked %.1f%% vs reliable %.1f%%"
             (100.0 *. slow.Fig4.semantic.Pipeline.blocked_fraction)
             (100.0 *. slow.Fig4.reliable.Pipeline.blocked_fraction);
       });
      (let slow = f4 30. in
       {
         id = "C7";
         claim = "Purging prevents buffers from filling between the two thresholds";
         source = "§5.4, Figure 4(b)";
         holds =
           slow.Fig4.semantic.Pipeline.mean_occupancy
           < slow.Fig4.reliable.Pipeline.mean_occupancy;
         detail =
           Printf.sprintf "occupancy at 30 msg/s: semantic %.1f vs reliable %.1f msgs"
             slow.Fig4.semantic.Pipeline.mean_occupancy
             slow.Fig4.reliable.Pipeline.mean_occupancy;
       });
      {
        id = "C8";
        claim = "SVS has no negative impact on view-change cost (smaller flush)";
        source = "§3.3, §5.4";
        holds =
          v1_sem.View_latency.pred_size * 3 < v1_rel.View_latency.pred_size
          && v1_sem.View_latency.violations + v1_rel.View_latency.violations = 0;
        detail =
          Printf.sprintf "agreed flush: %d msgs (semantic) vs %d msgs (reliable)"
            v1_sem.View_latency.pred_size v1_rel.View_latency.pred_size;
      };
      {
        id = "C9";
        claim = "Consistency is preserved: the SVS safety properties hold under purging";
        source = "§3.2, §3.4";
        holds = v1_sem.View_latency.violations = 0 && v1_sem.View_latency.purged > 0;
        detail =
          Printf.sprintf "checker clean with %d messages purged at the slow member"
            v1_sem.View_latency.purged;
      };
      (let lr = Last_resort.sweep ~spec ~freezes:[ 4.0; 8.0 ] () in
       let mid = List.nth lr 0 and long = List.nth lr 1 in
       {
         id = "C10";
         claim =
           "Reconfiguration is avoided for transient perturbations but still available when \
            purging is not enough";
         source = "§1, §2.2";
         holds =
           mid.Last_resort.reliable_excluded
           && (not mid.Last_resort.semantic_excluded)
           && long.Last_resort.semantic_excluded;
         detail =
           Printf.sprintf "4 s freeze: reliable expelled, semantic stayed; 8 s freeze: both";
       });
    ]
  in
  claims

let print ?spec ppf () =
  let verdicts = evaluate ?spec () in
  Format.fprintf ppf "Machine-checked reproduction claims:@.";
  Series.render_table ppf
    ~header:[ "id"; "verdict"; "claim (source)"; "measured" ]
    ~rows:
      (List.map
         (fun v ->
           [
             v.id;
             (if v.holds then "HOLDS" else "FAILS");
             Printf.sprintf "%s (%s)" v.claim v.source;
             v.detail;
           ])
         verdicts);
  let held = List.length (List.filter (fun v -> v.holds) verdicts) in
  Format.fprintf ppf "%d/%d claims hold@." held (List.length verdicts)
