(** Figure 4 — impact of an increasingly slow consumer with a fixed
    buffer, reliable vs semantic.

    (a) Producer idle % (100% = never blocked by flow control) as the
    consumer rate decreases.
    (b) Time-weighted buffer occupancy over the same sweep. *)

type point = {
  rate : float;
  reliable : Pipeline.result;
  semantic : Pipeline.result;
}

val sweep : ?spec:Spec.t -> ?buffer:int -> ?rates:float list -> unit -> point list
(** Default buffer 15 (the paper's §5.4 text), default rates
    10..140 msg/s. *)

val fig4a : point list -> Svs_stats.Series.t list
(** Producer idle %, one series per mode. *)

val fig4b : point list -> Svs_stats.Series.t list
(** Mean buffer occupancy, one series per mode. *)

val print : ?spec:Spec.t -> ?buffer:int -> Format.formatter -> unit -> unit
