(** Figure 5 — impact of purging as a function of buffer size.

    (a) Threshold consumer rate (lowest rate disturbing the producer
    at most 5%) vs buffer size; the paper also plots the average input
    rate as a horizontal reference.
    (b) Tolerated full-stop perturbation length (ms) vs buffer size. *)

type point = {
  buffer : int;
  reliable_threshold : float;
  semantic_threshold : float;
  reliable_perturbation : float;  (** seconds *)
  semantic_perturbation : float;  (** seconds *)
}

val sweep : ?spec:Spec.t -> ?buffers:int list -> unit -> point list * float
(** Returns the points and the average input rate (msg/s). Default
    buffers 4..28 step 4 (the paper's x range). *)

val fig5a : point list * float -> Svs_stats.Series.t list

val fig5b : point list * float -> Svs_stats.Series.t list

val print : ?spec:Spec.t -> Format.formatter -> unit -> unit
