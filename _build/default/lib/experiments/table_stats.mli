(** T1 — the in-text session statistics of §5.2, paper vs measured. *)

type row = {
  metric : string;
  paper : string;  (** The value the paper reports ("-" if not given). *)
  measured : string;
}

val rows : ?spec:Spec.t -> unit -> row list

val print : ?spec:Spec.t -> Format.formatter -> unit -> unit
