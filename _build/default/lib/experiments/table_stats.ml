module Trace_stats = Svs_workload.Trace_stats
module Series = Svs_stats.Series

type row = {
  metric : string;
  paper : string;
  measured : string;
}

let rows ?(spec = Spec.default) () =
  let trace = Spec.trace spec in
  let messages = Spec.messages spec in
  let s = Trace_stats.summarise trace messages in
  let top_rank =
    match Trace_stats.rank_frequencies trace with
    | (_, pct) :: _ -> Printf.sprintf "%.1f%%" pct
    | [] -> "-"
  in
  [
    { metric = "rounds recorded"; paper = "11696"; measured = string_of_int s.Trace_stats.rounds };
    {
      metric = "session length (s)";
      paper = "~360";
      measured = Printf.sprintf "%.0f" s.Trace_stats.duration;
    };
    {
      metric = "avg active items per round";
      paper = "42.33";
      measured = Printf.sprintf "%.2f" s.Trace_stats.avg_active_items;
    };
    {
      metric = "avg modified items per round";
      paper = "1.39";
      measured = Printf.sprintf "%.2f" s.Trace_stats.avg_modified_per_round;
    };
    {
      metric = "messages never obsolete";
      paper = "41.88%";
      measured = Printf.sprintf "%.2f%%" (100.0 *. s.Trace_stats.never_obsolete_share);
    };
    {
      metric = "offered load (msg/s)";
      paper = "-";
      measured = Printf.sprintf "%.1f" s.Trace_stats.message_rate;
    };
    { metric = "top item modified in rounds"; paper = "~22%"; measured = top_rank };
  ]

let print ?(spec = Spec.default) ppf () =
  Format.fprintf ppf "T1: session statistics (§5.2), workload: %a@." Spec.pp_workload
    spec.Spec.workload;
  Series.render_table ppf
    ~header:[ "metric"; "paper"; "measured" ]
    ~rows:(List.map (fun r -> [ r.metric; r.paper; r.measured ]) (rows ~spec ()))
