module Arena = Svs_game.Arena
module Stream = Svs_workload.Stream
module Trace_stats = Svs_workload.Trace_stats
module Histogram = Svs_stats.Histogram
module Series = Svs_stats.Series

type row = {
  players : int;
  message_rate : float;
  never_obsolete : float;
  p90_distance : int;
  semantic_threshold_small : float;
  semantic_threshold_large : float;
}

let sweep ?(rounds = 6000) ?(players = [ 2; 5; 10; 20 ]) ?(seed = 42) () =
  List.map
    (fun n ->
      let trace = Arena.simulate ~rounds { Arena.default_config with players = n; seed } in
      let measure ~buffer =
        let k = Stdlib.max 8 (2 * buffer) in
        let messages = Stream.of_trace ~k trace in
        Pipeline.threshold ~messages ~buffer ~mode:Pipeline.Semantic ()
      in
      let messages = Stream.of_trace ~k:30 trace in
      let summary = Trace_stats.summarise trace messages in
      let distances = Trace_stats.obsolescence_distances messages in
      (* The paper instruments raw per-item updates, so the
         never-obsolete share is measured on the single-item (tagged)
         encoding; the batch encoding's piggybacked commits would count
         as never-obsolete and mask the trend. *)
      let single = Ablation.annotate Ablation.Tagging trace in
      {
        players = n;
        message_rate = summary.Trace_stats.message_rate;
        never_obsolete = Trace_stats.never_obsolete_share single;
        p90_distance =
          (if Histogram.count distances = 0 then 0 else Histogram.percentile distances 90.0);
        semantic_threshold_small = measure ~buffer:15;
        semantic_threshold_large = measure ~buffer:60;
      })
    players

let print ppf () =
  Format.fprintf ppf
    "A6: player-count scaling (arena server; §5.2's observation about larger sessions)@.";
  let rows = sweep () in
  Series.render_table ppf
    ~header:
      [
        "players"; "msg/s"; "never-obsolete"; "p90 distance"; "sem threshold (buf 15)";
        "sem threshold (buf 60)";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.players;
             Printf.sprintf "%.1f" r.message_rate;
             Printf.sprintf "%.1f%%" (100.0 *. r.never_obsolete);
             string_of_int r.p90_distance;
             Printf.sprintf "%.1f" r.semantic_threshold_small;
             Printf.sprintf "%.1f" r.semantic_threshold_large;
           ])
         rows);
  Format.fprintf ppf
    "note: message rate and obsolescence distance grow with the session as the paper@.";
  Format.fprintf ppf
    "observed, and purging regains effectiveness at larger buffers; the never-obsolete@.";
  Format.fprintf ppf
    "share stays flat here because arena projectile (reliable) traffic scales with@.";
  Format.fprintf ppf "update traffic, unlike the instrumented Quake sessions.@."
