(** A2 — protocol-in-the-loop validation of the Figure 4(a) shape.

    The high-level pipeline of {!Pipeline} is the paper's own §5.3
    methodology; this experiment replays the same stream through the
    {e full} SVS stack (Figure 1 protocol, consensus service, bounded
    delivery queues, network backpressure) with one slow member, and
    checks that the producer-disturbance shape agrees: with purging
    the producer stays undisturbed at consumer rates far below what
    reliable delivery needs.

    The producer models a bounded outgoing buffer towards the slow
    member: it blocks while more than [buffer] of its messages are
    held back at the slow member's network inbox. *)

type point = {
  rate : float;
  blocked_fraction : float;
  purged : int;
  backlog : int;  (** Slow member's held-back messages at the end. *)
  violations : int;  (** Checker violations (must be 0). *)
}

val sweep :
  ?spec:Spec.t ->
  ?buffer:int ->
  ?duration:float ->
  ?rates:float list ->
  mode:Pipeline.mode ->
  unit ->
  point list
(** Defaults: buffer 15, 60 s of trace, rates [20;30;40;60;80;100]. *)

val print : ?spec:Spec.t -> Format.formatter -> unit -> unit
