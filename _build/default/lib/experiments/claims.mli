(** Machine-checked reproduction claims.

    Each qualitative claim the paper's evaluation makes is encoded as a
    predicate over freshly measured results, so the reproduction can be
    re-validated on any machine, seed or workload with one command
    ([svs_cli claims]). These are the same invariants the test suite
    guards, packaged as a user-facing report. *)

type verdict = {
  id : string;  (** e.g. "C3" *)
  claim : string;  (** The paper's statement, paraphrased. *)
  source : string;  (** Where the paper makes it. *)
  holds : bool;
  detail : string;  (** The measured numbers behind the verdict. *)
}

val evaluate : ?spec:Spec.t -> unit -> verdict list
(** Runs the underlying experiments (on a shortened trace by default
    when [spec] is not given — a few seconds of compute). *)

val print : ?spec:Spec.t -> Format.formatter -> unit -> unit
(** Render the report; the final line states how many claims hold. *)
