module Engine = Svs_sim.Engine
module Group = Svs_core.Group
module Checker = Svs_core.Checker
module Latency = Svs_net.Latency
module Stream = Svs_workload.Stream
module Series = Svs_stats.Series

type point = {
  freeze : float;
  reliable_excluded : bool;
  semantic_excluded : bool;
  reliable_peak_backlog : int;
  semantic_peak_backlog : int;
}

(* One run: 3 members; member 2 consumes at 100 msg/s but freezes
   completely during [10, 10+freeze); overflow exclusion armed. *)
let run_one ~spec ~buffer ~backlog_limit ~freeze ~semantic =
  let messages = Spec.messages ~buffer spec in
  let engine = Engine.create ~seed:spec.Spec.seed () in
  let config =
    {
      Group.default_config with
      semantic;
      buffer_capacity = Some buffer;
      stability_period = Some 0.25;
      overflow_exclusion =
        Some { Group.backlog_limit; patience = 0.2; check_period = 0.05 };
    }
  in
  let cluster =
    Group.create_cluster engine ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001)
      ~config ()
  in
  let producer = Group.member cluster 0 in
  let fast = Group.member cluster 1 in
  let victim = Group.member cluster 2 in
  let horizon = 14.0 +. freeze in
  let i = ref 0 in
  let limit =
    let n = Array.length messages in
    let rec scan ix =
      if ix >= n || messages.(ix).Stream.time > horizon then ix else scan (ix + 1)
    in
    scan 0
  in
  let rec emit_next () =
    if !i < limit then begin
      let m = messages.(!i) in
      let at = Float.max m.Stream.time (Engine.now engine) in
      ignore (Engine.schedule_at engine ~time:at (fun () -> attempt m) : Engine.handle)
    end
  and attempt m =
    match Group.multicast producer ~ann:m.Stream.ann m.Stream.sn with
    | Ok _ ->
        incr i;
        emit_next ()
    | Error `Blocked ->
        ignore (Engine.schedule engine ~delay:0.01 (fun () -> attempt m) : Engine.handle)
    | Error `Not_member -> ()
  in
  emit_next ();
  ignore
    (Engine.every engine ~period:0.005 (fun () ->
         ignore (Group.deliver_all producer);
         ignore (Group.deliver_all fast);
         Engine.now engine < horizon)
      : Engine.handle);
  let peak_backlog = ref 0 in
  ignore
    (Engine.every engine ~period:(1.0 /. 100.0) (fun () ->
         let t = Engine.now engine in
         peak_backlog := Stdlib.max !peak_backlog (Group.inbox victim + Group.pending victim);
         if (t < 10.0 || t >= 10.0 +. freeze) && Group.is_member victim then
           ignore (Group.deliver victim);
         t < horizon)
      : Engine.handle);
  Engine.run ~until:horizon engine;
  List.iter (fun m -> ignore (Group.deliver_all m)) (Group.members cluster);
  (match Checker.verify (Group.checker cluster) with
  | [] -> ()
  | violations ->
      invalid_arg
        (String.concat "; " (List.map Checker.violation_to_string violations)));
  let excluded = not (Svs_core.View.mem 2 (Group.view producer)) in
  (excluded, !peak_backlog)

let default_freezes = [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ]

let sweep ?(spec = Spec.default) ?(buffer = 60) ?(backlog_limit = 60)
    ?(freezes = default_freezes) () =
  List.map
    (fun freeze ->
      let reliable_excluded, reliable_peak_backlog =
        run_one ~spec ~buffer ~backlog_limit ~freeze ~semantic:false
      in
      let semantic_excluded, semantic_peak_backlog =
        run_one ~spec ~buffer ~backlog_limit ~freeze ~semantic:true
      in
      { freeze; reliable_excluded; semantic_excluded; reliable_peak_backlog;
        semantic_peak_backlog })
    freezes

let print ?(spec = Spec.default) ppf () =
  Format.fprintf ppf
    "A5: reconfiguration as a last resort (delivery queue 60, overflow exclusion at backlog 60 for 0.2 s; \
     one freeze of the given length)@.";
  let points = sweep ~spec () in
  Series.render_table ppf
    ~header:
      [ "freeze (s)"; "reliable: expelled"; "semantic: expelled"; "rel peak backlog";
        "sem peak backlog" ]
    ~rows:
      (List.map
         (fun p ->
           [
             Printf.sprintf "%.2f" p.freeze;
             (if p.reliable_excluded then "yes" else "no");
             (if p.semantic_excluded then "yes" else "no");
             string_of_int p.reliable_peak_backlog;
             string_of_int p.semantic_peak_backlog;
           ])
         points)
