lib/replication/replicated_store.ml: Hashtbl List Svs_core Svs_obs
