lib/replication/replicated_store.mli: Svs_core
