module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation

type 'p data = {
  id : Msg_id.t;
  payload : 'p;
  ann : Annotation.t;
}

type 'p msg =
  | Mdata of 'p data
  | Morder of { seq : int; id : Msg_id.t }

type 'p slot = { meta : 'p data; mutable ghost : bool }

type 'p t = {
  me : int;
  members : int array;
  semantic : bool;
  send : dst:int -> 'p msg -> unit;
  store : (Msg_id.t, 'p slot) Hashtbl.t; (* received data, by id *)
  order : (int, Msg_id.t) Hashtbl.t; (* global sequence -> id *)
  mutable next_deliver : int;
  mutable next_assign : int; (* sequencer only *)
  mutable sent : int;
  mutable purged_count : int;
}

let create ~me ~members ?(semantic = true) ~send () =
  let members = Array.of_list (List.sort_uniq compare members) in
  if not (Array.exists (( = ) me) members) then
    invalid_arg "Total.create: me must be a member";
  {
    me;
    members;
    semantic;
    send;
    store = Hashtbl.create 64;
    order = Hashtbl.create 64;
    next_deliver = 0;
    next_assign = 0;
    sent = 0;
    purged_count = 0;
  }

let sequencer t = t.members.(0)

let next_seq t = t.next_deliver

let pending t = Hashtbl.length t.store

let purged t = t.purged_count

let covers older newer =
  Annotation.covers ~older:(older.id, older.ann) ~newer:(newer.id, newer.ann)

(* Receiver-side purge: ghost stored messages the fresh one obsoletes
   (and the fresh one if something stored already covers it). Ghosting
   is deterministic from the annotations, so every member skips the
   same sequence slots. *)
let purge_against t (fresh : 'p slot) =
  if t.semantic then
    Hashtbl.iter
      (fun _ (s : 'p slot) ->
        if s != fresh then begin
          if (not s.ghost) && covers s.meta fresh.meta
             && not (Msg_id.equal s.meta.id fresh.meta.id)
          then begin
            s.ghost <- true;
            t.purged_count <- t.purged_count + 1
          end;
          if (not fresh.ghost) && covers fresh.meta s.meta
             && not (Msg_id.equal s.meta.id fresh.meta.id)
          then begin
            fresh.ghost <- true;
            t.purged_count <- t.purged_count + 1
          end
        end)
      t.store

let sequence t id =
  if t.me = sequencer t then begin
    let seq = t.next_assign in
    t.next_assign <- seq + 1;
    Hashtbl.replace t.order seq id;
    Array.iter
      (fun dst -> if dst <> t.me then t.send ~dst (Morder { seq; id }))
      t.members
  end

let store_data t (data : 'p data) =
  if not (Hashtbl.mem t.store data.id) then begin
    let slot = { meta = data; ghost = false } in
    Hashtbl.replace t.store data.id slot;
    purge_against t slot;
    sequence t data.id
  end

let multicast t ?(ann = Annotation.Unrelated) payload =
  let id = Msg_id.make ~sender:t.me ~sn:t.sent in
  t.sent <- t.sent + 1;
  let data = { id; payload; ann } in
  Array.iter (fun dst -> if dst <> t.me then t.send ~dst (Mdata data)) t.members;
  store_data t data;
  data

let on_message t ~src:_ = function
  | Mdata data -> store_data t data
  | Morder { seq; id } -> Hashtbl.replace t.order seq id

module Cw = Svs_codec.Codec.Writer
module Cr = Svs_codec.Codec.Reader

let write_msg write_p w = function
  | Mdata data ->
      Cw.uint8 w 0;
      Svs_obs.Obs_codec.write_msg_id w data.id;
      Svs_obs.Obs_codec.write_annotation w data.ann;
      write_p w data.payload
  | Morder { seq; id } ->
      Cw.uint8 w 1;
      Cw.varint w seq;
      Svs_obs.Obs_codec.write_msg_id w id

let read_msg read_p r =
  match Cr.uint8 r with
  | 0 ->
      let id = Svs_obs.Obs_codec.read_msg_id r in
      let ann = Svs_obs.Obs_codec.read_annotation r in
      let payload = read_p r in
      Mdata { id; payload; ann }
  | 1 ->
      let seq = Cr.varint r in
      let id = Svs_obs.Obs_codec.read_msg_id r in
      Morder { seq; id }
  | n -> raise (Svs_codec.Codec.Malformed (Printf.sprintf "total-order tag %d" n))

let rec deliver t =
  match Hashtbl.find_opt t.order t.next_deliver with
  | None -> None
  | Some id -> (
      match Hashtbl.find_opt t.store id with
      | None -> None (* data still in flight *)
      | Some slot ->
          let seq = t.next_deliver in
          t.next_deliver <- seq + 1;
          Hashtbl.remove t.store id;
          Hashtbl.remove t.order seq;
          if slot.ghost then deliver t else Some (seq, slot.meta))

let deliver_all t =
  let rec go acc = match deliver t with None -> List.rev acc | Some d -> go (d :: acc) in
  go []
