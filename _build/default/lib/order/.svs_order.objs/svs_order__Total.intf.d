lib/order/total.mli: Svs_codec Svs_obs
