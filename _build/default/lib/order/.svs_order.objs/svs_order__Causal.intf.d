lib/order/causal.mli: Svs_codec Svs_obs
