lib/order/causal.ml: Array Fun Hashtbl List Svs_codec Svs_obs
