lib/order/total.ml: Array Hashtbl List Printf Svs_codec Svs_obs
