(** Semantically reliable total-order multicast (fixed sequencer).

    The second ordered member of the paper's §7 toolkit. Senders
    broadcast data; the sequencer (lowest member id) assigns a global
    sequence which every member follows, so all members deliver
    surviving messages in the same order. Purging is receiver-side:
    when a buffered message is obsoleted by a newer one, its payload is
    dropped and its sequence slot is skipped at delivery time — every
    member still skips/delivers the same slots in the same order
    because obsolescence is decided by the (deterministic) annotations.

    Static membership, FIFO-reliable channels, transport-agnostic (like
    {!Causal}). *)

type 'p msg

type 'p data = {
  id : Svs_obs.Msg_id.t;
  payload : 'p;
  ann : Svs_obs.Annotation.t;
}

type 'p t

val create :
  me:int ->
  members:int list ->
  ?semantic:bool ->
  send:(dst:int -> 'p msg -> unit) ->
  unit ->
  'p t

val sequencer : 'p t -> int

val multicast : 'p t -> ?ann:Svs_obs.Annotation.t -> 'p -> 'p data

val on_message : 'p t -> src:int -> 'p msg -> unit

val deliver : 'p t -> (int * 'p data) option
(** Next in-order, non-obsolete message with its global sequence
    number; [None] if the next slot is not yet deliverable. *)

val deliver_all : 'p t -> (int * 'p data) list

val next_seq : 'p t -> int
(** The global sequence slot this member will deliver (or skip) next. *)

val pending : 'p t -> int

val purged : 'p t -> int

val write_msg :
  (Svs_codec.Codec.Writer.t -> 'p -> unit) -> Svs_codec.Codec.Writer.t -> 'p msg -> unit
(** Wire encoding, so the toolkit also runs over real transports. *)

val read_msg :
  (Svs_codec.Codec.Reader.t -> 'p) -> Svs_codec.Codec.Reader.t -> 'p msg
