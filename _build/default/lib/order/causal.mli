(** Semantically reliable causal multicast.

    The paper positions SVS as one element of "a full group
    communication toolkit offering semantic reliable multicast
    services", explicitly including causally and totally ordered
    multicast (§7). This module is the causal member of that toolkit:
    classic vector-clock causal broadcast (CBCAST-style) extended with
    obsolescence purging.

    Purging under causal order must not break the delivery condition:
    later messages' vector clocks count the purged message. We
    therefore keep a {e ghost} of each purged message — its id and
    vector clock, with the payload dropped — and advance the delivered
    vector through ghosts silently when their causal past is
    satisfied. The application never sees obsolete payloads, buffer
    {e payload} space (the expensive part) is reclaimed immediately,
    and causality of everything delivered is preserved.

    Like {!Svs_core.Protocol}, the module is transport-agnostic: wire
    it to any FIFO-reliable point-to-point transport. Membership is
    static (the dynamic-membership machinery lives in SVS proper). *)

type 'p msg

type 'p data = {
  id : Svs_obs.Msg_id.t;
  payload : 'p;
  ann : Svs_obs.Annotation.t;
}

type 'p t

val create :
  me:int ->
  members:int list ->
  ?semantic:bool ->
  send:(dst:int -> 'p msg -> unit) ->
  unit ->
  'p t
(** [send] must provide reliable FIFO channels to each member (the
    transport self-delivery is not used; local copies are handled
    internally). [semantic] defaults to true. *)

val multicast : 'p t -> ?ann:Svs_obs.Annotation.t -> 'p -> 'p data

val on_message : 'p t -> src:int -> 'p msg -> unit

val deliver : 'p t -> 'p data option
(** Next causally deliverable, non-obsolete message ([None] when
    nothing is currently deliverable). *)

val deliver_all : 'p t -> 'p data list

val pending : 'p t -> int
(** Buffered messages whose causal past is incomplete (ghosts
    included). *)

val purged : 'p t -> int

val delivered_vector : 'p t -> (int * int) list
(** Per-sender count of causally accounted messages (delivered or
    ghosted); for tests. *)

val write_msg :
  (Svs_codec.Codec.Writer.t -> 'p -> unit) -> Svs_codec.Codec.Writer.t -> 'p msg -> unit
(** Wire encoding, so the toolkit also runs over real transports. *)

val read_msg :
  (Svs_codec.Codec.Reader.t -> 'p) -> Svs_codec.Codec.Reader.t -> 'p msg
