module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation

type 'p data = {
  id : Msg_id.t;
  payload : 'p;
  ann : Annotation.t;
}

type 'p msg = { data : 'p data; vc : int array }

type 'p entry = {
  meta : 'p data;
  vc : int array;
  mutable ghost : bool; (* payload purged; kept for causal accounting *)
}

type 'p t = {
  me : int;
  members : int array;
  index : (int, int) Hashtbl.t; (* member -> position *)
  accounted : int array; (* D: delivered-or-ghosted count per member *)
  mutable sent : int;
  mutable buffer : 'p entry list; (* arrival order *)
  semantic : bool;
  send : dst:int -> 'p msg -> unit;
  mutable purged_count : int;
}

let create ~me ~members ?(semantic = true) ~send () =
  let members = Array.of_list (List.sort_uniq compare members) in
  if not (Array.exists (( = ) me) members) then
    invalid_arg "Causal.create: me must be a member";
  let index = Hashtbl.create 8 in
  Array.iteri (fun i p -> Hashtbl.replace index p i) members;
  {
    me;
    members;
    index;
    accounted = Array.make (Array.length members) 0;
    sent = 0;
    buffer = [];
    semantic;
    send;
    purged_count = 0;
  }

let idx t p = Hashtbl.find t.index p

let covers older newer =
  Annotation.covers ~older:(older.id, older.ann) ~newer:(newer.id, newer.ann)

(* Ghost the buffered messages the new entry obsoletes (and the new
   entry itself if something newer already covers it). *)
let purge_against t (fresh : 'p entry) =
  if t.semantic then begin
    List.iter
      (fun e ->
        if e != fresh && not e.ghost then begin
          if covers e.meta fresh.meta && not (Msg_id.equal e.meta.id fresh.meta.id) then begin
            e.ghost <- true;
            t.purged_count <- t.purged_count + 1
          end;
          if (not fresh.ghost) && covers fresh.meta e.meta
             && not (Msg_id.equal e.meta.id fresh.meta.id)
          then begin
            fresh.ghost <- true;
            t.purged_count <- t.purged_count + 1
          end
        end)
      t.buffer
  end

let insert t meta vc =
  let entry = { meta; vc; ghost = false } in
  t.buffer <- t.buffer @ [ entry ];
  purge_against t entry

let multicast t ?(ann = Annotation.Unrelated) payload =
  let id = Msg_id.make ~sender:t.me ~sn:t.sent in
  t.sent <- t.sent + 1;
  let vc = Array.copy t.accounted in
  vc.(idx t t.me) <- id.Msg_id.sn + 1;
  let data = { id; payload; ann } in
  Array.iter (fun dst -> if dst <> t.me then t.send ~dst { data; vc }) t.members;
  insert t data vc;
  data

let on_message t ~src:_ { data; vc } = insert t data vc

let deliverable t (e : 'p entry) =
  let s = idx t e.meta.id.Msg_id.sender in
  e.vc.(s) = t.accounted.(s) + 1
  && Array.for_all Fun.id
       (Array.mapi (fun q v -> q = s || v <= t.accounted.(q)) e.vc)

let account t (e : 'p entry) =
  let s = idx t e.meta.id.Msg_id.sender in
  t.accounted.(s) <- t.accounted.(s) + 1;
  t.buffer <- List.filter (fun x -> x != e) t.buffer

(* Pull the next causally deliverable real message, silently accounting
   any deliverable ghosts on the way. *)
let rec deliver t =
  match List.find_opt (deliverable t) t.buffer with
  | None -> None
  | Some e ->
      account t e;
      if e.ghost then deliver t else Some e.meta

let deliver_all t =
  let rec go acc = match deliver t with None -> List.rev acc | Some d -> go (d :: acc) in
  go []

let pending t = List.length t.buffer

let purged t = t.purged_count

module Cw = Svs_codec.Codec.Writer
module Cr = Svs_codec.Codec.Reader

let write_msg write_p w { data; vc } =
  Svs_obs.Obs_codec.write_msg_id w data.id;
  Svs_obs.Obs_codec.write_annotation w data.ann;
  write_p w data.payload;
  Cw.list w (fun w v -> Cw.varint w v) (Array.to_list vc)

let read_msg read_p r =
  let id = Svs_obs.Obs_codec.read_msg_id r in
  let ann = Svs_obs.Obs_codec.read_annotation r in
  let payload = read_p r in
  let vc = Array.of_list (Cr.list r Cr.varint) in
  { data = { id; payload; ann }; vc }

let delivered_vector t =
  Array.to_list (Array.mapi (fun i p -> (p, t.accounted.(i))) t.members)
