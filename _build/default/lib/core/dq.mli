(** Resizable ring-buffer deque.

    Backs the protocol's [to-deliver] queue: O(1) amortised push/pop at
    both ends plus in-place filtering, which is what [purge] needs. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit

val push_front : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option

val peek_front : 'a t -> 'a option

val get : 'a t -> int -> 'a
(** [get t i] is the i-th element from the front (0-based). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val exists : ('a -> bool) -> 'a t -> bool

val filter_in_place : ('a -> bool) -> 'a t -> int
(** Keeps elements satisfying the predicate, preserving order; returns
    the number removed. *)

val to_list : 'a t -> 'a list

val clear : 'a t -> unit
