type t = { id : int; members : int list }

let make ~id ~members =
  if members = [] then invalid_arg "View.make: empty membership";
  { id; members = List.sort_uniq compare members }

let initial ~members = make ~id:0 ~members

let mem p t = List.mem p t.members

let size t = List.length t.members

let majority t = (size t / 2) + 1

let remove t l = make ~id:(t.id + 1) ~members:(List.filter (fun p -> not (List.mem p l)) t.members)

let equal a b = a.id = b.id && a.members = b.members

let pp ppf t =
  Format.fprintf ppf "v%d{%a}" t.id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    t.members
