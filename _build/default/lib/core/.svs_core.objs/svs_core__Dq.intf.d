lib/core/dq.mli:
