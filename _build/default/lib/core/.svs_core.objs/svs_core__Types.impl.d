lib/core/types.ml: Format List Svs_obs View
