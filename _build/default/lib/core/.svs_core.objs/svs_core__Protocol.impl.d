lib/core/protocol.ml: Dq Hashtbl List Logs Option Queue Stdlib Svs_obs Types View
