lib/core/group.ml: Checker Hashtbl List Option Printf Protocol Queue Stdlib Svs_consensus Svs_detector Svs_net Svs_sim Types View Wire_codec
