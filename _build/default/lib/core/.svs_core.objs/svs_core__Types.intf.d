lib/core/types.mli: Format Svs_obs View
