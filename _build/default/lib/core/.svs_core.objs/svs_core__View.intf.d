lib/core/view.mli: Format
