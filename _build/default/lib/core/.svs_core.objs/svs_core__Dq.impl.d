lib/core/dq.ml: Array
