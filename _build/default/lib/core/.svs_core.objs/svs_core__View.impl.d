lib/core/view.ml: Format List
