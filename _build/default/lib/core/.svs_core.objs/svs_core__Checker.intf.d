lib/core/checker.mli: Format Svs_obs View
