lib/core/wire_codec.mli: Svs_codec Svs_obs Types View
