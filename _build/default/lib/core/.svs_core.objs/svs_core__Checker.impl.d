lib/core/checker.ml: Format Hashtbl List Svs_obs View
