lib/core/protocol.mli: Svs_obs Types View
