lib/core/group.mli: Checker Svs_detector Svs_net Svs_obs Svs_sim Types View Wire_codec
