lib/core/wire_codec.ml: Printf Svs_codec Svs_obs Types View
