(** Binary encoding of the SVS wire protocol.

    Gives every control and data message a concrete byte
    representation: used by tests (round-trip properties), by the
    encoding ablation (real wire sizes instead of estimates), and by
    the bandwidth-aware network model (transmission time proportional
    to actual message size). *)

module Codec = Svs_codec.Codec

type 'p payload_codec = {
  write : Codec.Writer.t -> 'p -> unit;
  read : Codec.Reader.t -> 'p;
}

val unit_codec : unit payload_codec

val int_codec : int payload_codec

val string_codec : string payload_codec

val pair_codec : 'a payload_codec -> 'b payload_codec -> ('a * 'b) payload_codec

(** {1 Component encoders} *)

val write_msg_id : Codec.Writer.t -> Svs_obs.Msg_id.t -> unit

val read_msg_id : Codec.Reader.t -> Svs_obs.Msg_id.t

val write_annotation : Codec.Writer.t -> Svs_obs.Annotation.t -> unit

val read_annotation : Codec.Reader.t -> Svs_obs.Annotation.t

val write_view : Codec.Writer.t -> View.t -> unit

val read_view : Codec.Reader.t -> View.t

val write_data : 'p payload_codec -> Codec.Writer.t -> 'p Types.data -> unit

val read_data : 'p payload_codec -> Codec.Reader.t -> 'p Types.data

(** {1 Whole messages} *)

val write_wire : 'p payload_codec -> Codec.Writer.t -> 'p Types.wire -> unit

val read_wire : 'p payload_codec -> Codec.Reader.t -> 'p Types.wire

val wire_to_string : 'p payload_codec -> 'p Types.wire -> string

val wire_of_string : 'p payload_codec -> string -> 'p Types.wire

val wire_size : 'p payload_codec -> 'p Types.wire -> int
(** Encoded size in bytes. *)

val write_proposal : 'p payload_codec -> Codec.Writer.t -> 'p Types.proposal -> unit

val read_proposal : 'p payload_codec -> Codec.Reader.t -> 'p Types.proposal

val proposal_size : 'p payload_codec -> 'p Types.proposal -> int
