type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of front element *)
  mutable size : int;
}

let create () = { data = Array.make 16 None; head = 0; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let capacity t = Array.length t.data

let index t i = (t.head + i) mod capacity t

let grow t =
  if t.size = capacity t then begin
    let ncap = 2 * capacity t in
    let ndata = Array.make ncap None in
    for i = 0 to t.size - 1 do
      ndata.(i) <- t.data.(index t i)
    done;
    t.data <- ndata;
    t.head <- 0
  end

let push_back t x =
  grow t;
  t.data.(index t t.size) <- Some x;
  t.size <- t.size + 1

let push_front t x =
  grow t;
  t.head <- (t.head - 1 + capacity t) mod capacity t;
  t.data.(t.head) <- Some x;
  t.size <- t.size + 1

let pop_front t =
  if t.size = 0 then None
  else begin
    let x = t.data.(t.head) in
    t.data.(t.head) <- None;
    t.head <- index t 1;
    t.size <- t.size - 1;
    x
  end

let peek_front t = if t.size = 0 then None else t.data.(t.head)

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Dq.get: index out of bounds";
  match t.data.(index t i) with Some x -> x | None -> assert false

let iter f t =
  for i = 0 to t.size - 1 do
    match t.data.(index t i) with Some x -> f x | None -> assert false
  done

let exists p t =
  let rec scan i = i < t.size && (p (get t i) || scan (i + 1)) in
  scan 0

let filter_in_place p t =
  let kept = ref 0 in
  let old_size = t.size in
  for i = 0 to old_size - 1 do
    let x = get t i in
    if p x then begin
      if !kept <> i then t.data.(index t !kept) <- Some x;
      incr kept
    end
  done;
  for i = !kept to old_size - 1 do
    t.data.(index t i) <- None
  done;
  t.size <- !kept;
  old_size - !kept

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (get t i :: acc) in
  build (t.size - 1) []

let clear t =
  t.data <- Array.make 16 None;
  t.head <- 0;
  t.size <- 0
