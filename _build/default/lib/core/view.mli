(** Group views: a numbered membership snapshot. *)

type t = { id : int; members : int list }
(** [members] is sorted and duplicate-free. *)

val make : id:int -> members:int list -> t

val initial : members:int list -> t
(** View 0. *)

val mem : int -> t -> bool

val size : t -> int

val majority : t -> int
(** Smallest strict majority of the membership. *)

val remove : t -> int list -> t
(** [remove v l] is a candidate successor view: id + 1, members minus
    [l]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
