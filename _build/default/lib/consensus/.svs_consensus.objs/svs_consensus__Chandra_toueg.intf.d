lib/consensus/chandra_toueg.mli: Format Svs_codec Svs_sim
