lib/consensus/arbiter.ml: Hashtbl List Svs_sim
