lib/consensus/chandra_toueg.ml: Array Format Hashtbl List Printf Svs_codec Svs_sim
