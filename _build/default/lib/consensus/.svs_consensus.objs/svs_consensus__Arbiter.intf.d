lib/consensus/arbiter.mli: Svs_sim
