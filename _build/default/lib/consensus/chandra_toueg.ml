module Engine = Svs_sim.Engine

type 'v msg =
  | Estimate of { round : int; est : 'v; ts : int }
  | Proposal of { round : int; value : 'v }
  | Reply of { round : int; ack : bool }
  | Decide of { value : 'v }

let pp_msg pp_v ppf = function
  | Estimate { round; est; ts } ->
      Format.fprintf ppf "ESTIMATE(r=%d,ts=%d,%a)" round ts pp_v est
  | Proposal { round; value } -> Format.fprintf ppf "PROPOSE(r=%d,%a)" round pp_v value
  | Reply { round; ack } -> Format.fprintf ppf "REPLY(r=%d,%s)" round (if ack then "ack" else "nack")
  | Decide { value } -> Format.fprintf ppf "DECIDE(%a)" pp_v value

module Cw = Svs_codec.Codec.Writer
module Cr = Svs_codec.Codec.Reader

let write_msg write_v w = function
  | Estimate { round; est; ts } ->
      Cw.uint8 w 0;
      Cw.varint w round;
      Cw.varint w ts;
      write_v w est
  | Proposal { round; value } ->
      Cw.uint8 w 1;
      Cw.varint w round;
      write_v w value
  | Reply { round; ack } ->
      Cw.uint8 w 2;
      Cw.varint w round;
      Cw.bool w ack
  | Decide { value } ->
      Cw.uint8 w 3;
      write_v w value

let read_msg read_v r =
  match Cr.uint8 r with
  | 0 ->
      let round = Cr.varint r in
      let ts = Cr.varint r in
      let est = read_v r in
      Estimate { round; est; ts }
  | 1 ->
      let round = Cr.varint r in
      let value = read_v r in
      Proposal { round; value }
  | 2 ->
      let round = Cr.varint r in
      let ack = Cr.bool r in
      Reply { round; ack }
  | 3 -> Decide { value = read_v r }
  | n -> raise (Svs_codec.Codec.Malformed (Printf.sprintf "consensus tag %d" n))

let msg_size ~value_size = function
  | Estimate { est; _ } -> 10 + value_size est
  | Proposal { value; _ } -> 6 + value_size value
  | Reply _ -> 6
  | Decide { value } -> 2 + value_size value

type 'v t = {
  engine : Engine.t;
  me : int;
  members : int array;
  majority : int;
  suspects : int -> bool;
  send : dst:int -> 'v msg -> unit;
  on_decide : 'v -> unit;
  mutable round : int;
  mutable estimate : 'v;
  mutable ts : int;
  mutable has_decided : bool;
  mutable awaiting_proposal : bool;
  (* Per-round message stores; messages may arrive for rounds we have
     not reached (channels are FIFO but processes advance at different
     speeds), so everything is keyed by round. *)
  estimates : (int, (int * 'v * int) list ref) Hashtbl.t;
  proposals : (int, 'v) Hashtbl.t;
  replies : (int, (int * bool) list ref) Hashtbl.t;
  proposed : (int, unit) Hashtbl.t; (* rounds for which I sent PROPOSE *)
  closed : (int, unit) Hashtbl.t; (* rounds for which I gave up as coordinator *)
  mutable poll : Engine.handle option;
}

let coordinator t r = t.members.(r mod Array.length t.members)

let decided t = t.has_decided

let round t = t.round

let stop t =
  match t.poll with
  | None -> ()
  | Some h ->
      Engine.cancel h;
      t.poll <- None

(* Deliver to a peer, short-circuiting self-sends so an instance does
   not depend on the transport looping messages back. *)
let rec tell t ~dst msg = if dst = t.me then handle t ~src:t.me msg else t.send ~dst msg

and tell_all t msg = Array.iter (fun dst -> tell t ~dst msg) t.members

and decide t value =
  if not t.has_decided then begin
    t.has_decided <- true;
    t.awaiting_proposal <- false;
    stop t;
    Array.iter (fun dst -> if dst <> t.me then t.send ~dst (Decide { value })) t.members;
    t.on_decide value
  end

(* Coordinator phase 2: with a majority of estimates, propose the one
   with the highest timestamp (the possibly-locked value). *)
and try_propose t r =
  if
    t.me = coordinator t r
    && (not (Hashtbl.mem t.proposed r))
    && not (Hashtbl.mem t.closed r)
  then
    match Hashtbl.find_opt t.estimates r with
    | None -> ()
    | Some ests when List.length !ests < t.majority -> ()
    | Some ests ->
        let best =
          List.fold_left
            (fun acc (_, est, ts) ->
              match acc with
              | Some (_, best_ts) when best_ts >= ts -> acc
              | _ -> Some (est, ts))
            None !ests
        in
        (match best with
        | None -> assert false
        | Some (value, _) ->
            Hashtbl.replace t.proposed r ();
            tell_all t (Proposal { round = r; value }))

(* Coordinator phase 4: with a majority of replies, decide if a
   majority of processes acknowledged (locked) the proposal. *)
and try_decide t r =
  if t.me = coordinator t r && Hashtbl.mem t.proposed r && not t.has_decided then
    match Hashtbl.find_opt t.replies r with
    | None -> ()
    | Some replies ->
        let total = List.length !replies in
        let acks = List.length (List.filter snd !replies) in
        if acks >= t.majority then
          match Hashtbl.find_opt t.proposals r with
          | Some value -> decide t value
          | None -> assert false
        else if total >= Array.length t.members then
          (* Every member replied and acks still lack a majority: this
             round can never decide; it is permanently closed. *)
          Hashtbl.replace t.closed r ()

(* Participant phase 3: adopt the coordinator's proposal, lock it, ack,
   and move to the next round. *)
and check_proposal t =
  if t.awaiting_proposal && not t.has_decided then
    match Hashtbl.find_opt t.proposals t.round with
    | None -> ()
    | Some value ->
        let r = t.round in
        t.estimate <- value;
        t.ts <- r;
        t.awaiting_proposal <- false;
        tell t ~dst:(coordinator t r) (Reply { round = r; ack = true });
        enter_round t (r + 1)

and enter_round t r =
  if not t.has_decided then begin
    t.round <- r;
    t.awaiting_proposal <- true;
    tell t ~dst:(coordinator t r) (Estimate { round = r; est = t.estimate; ts = t.ts });
    check_proposal t
  end

and handle t ~src msg =
  match msg with
  | Decide { value } -> decide t value
  | _ when t.has_decided -> ()
  | Estimate { round = r; est; ts } ->
      let ests =
        match Hashtbl.find_opt t.estimates r with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.estimates r l;
            l
      in
      if not (List.exists (fun (s, _, _) -> s = src) !ests) then begin
        ests := (src, est, ts) :: !ests;
        try_propose t r;
        try_decide t r
      end
  | Proposal { round = r; value } ->
      if not (Hashtbl.mem t.proposals r) then begin
        Hashtbl.replace t.proposals r value;
        check_proposal t
      end
  | Reply { round = r; ack } ->
      let replies =
        match Hashtbl.find_opt t.replies r with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.replies r l;
            l
      in
      if not (List.exists (fun (s, _) -> s = src) !replies) then begin
        replies := (src, ack) :: !replies;
        try_decide t r
      end

(* Failure-detector poll: a participant stuck waiting for the current
   round's proposal nacks and advances when the coordinator is
   suspected. *)
let poll_detector t () =
  if (not t.has_decided) && t.awaiting_proposal then begin
    let coord = coordinator t t.round in
    if coord <> t.me && t.suspects coord && not (Hashtbl.mem t.proposals t.round) then begin
      let r = t.round in
      t.awaiting_proposal <- false;
      tell t ~dst:coord (Reply { round = r; ack = false });
      enter_round t (r + 1)
    end
  end;
  not t.has_decided

let create engine ~me ~members ~suspects ~send ~on_decide ?(poll_period = 0.01) proposal =
  if members = [] then invalid_arg "Chandra_toueg.create: empty membership";
  if not (List.mem me members) then
    invalid_arg "Chandra_toueg.create: me must be a member";
  let members = Array.of_list (List.sort_uniq compare members) in
  let n = Array.length members in
  let t =
    {
      engine;
      me;
      members;
      majority = (n / 2) + 1;
      suspects;
      send;
      on_decide;
      round = 0;
      estimate = proposal;
      ts = 0;
      has_decided = false;
      awaiting_proposal = false;
      estimates = Hashtbl.create 7;
      proposals = Hashtbl.create 7;
      replies = Hashtbl.create 7;
      proposed = Hashtbl.create 7;
      closed = Hashtbl.create 7;
      poll = None;
    }
  in
  t.poll <- Some (Engine.every engine ~period:poll_period (poll_detector t));
  enter_round t 0;
  t

let on_message t ~src msg = handle t ~src msg
