(** Chandra–Toueg rotating-coordinator consensus for crash-stop
    processes with a majority of correct members and an (eventually
    accurate) failure detector.

    One value of type ['v t] is a single process's participation in a
    single consensus instance. The implementation is transport-agnostic:
    it emits wire messages through the [send] function given at creation
    and must be fed inbound messages via {!on_message}. Waiting on the
    failure detector is realised by a periodic poll of [suspects].

    Properties (given reliable FIFO channels, a majority of correct
    members, and a failure detector that eventually stops suspecting
    some correct member):
    - Validity: the decided value was proposed by some member.
    - Agreement: no two members decide differently.
    - Termination: every correct member eventually decides. *)

type 'v t

type 'v msg
(** Wire messages exchanged between the instance's members. *)

val pp_msg : (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v msg -> unit

val msg_size : value_size:('v -> int) -> 'v msg -> int
(** Approximate wire size in bytes (headers + carried value), for
    bandwidth-modelled networks. *)

val write_msg :
  (Svs_codec.Codec.Writer.t -> 'v -> unit) ->
  Svs_codec.Codec.Writer.t ->
  'v msg ->
  unit

val read_msg :
  (Svs_codec.Codec.Reader.t -> 'v) -> Svs_codec.Codec.Reader.t -> 'v msg

val create :
  Svs_sim.Engine.t ->
  me:int ->
  members:int list ->
  suspects:(int -> bool) ->
  send:(dst:int -> 'v msg -> unit) ->
  on_decide:('v -> unit) ->
  ?poll_period:float ->
  'v ->
  'v t
(** [create engine ~me ~members ~suspects ~send ~on_decide proposal]
    starts participating with initial estimate [proposal]. [on_decide]
    fires exactly once. [poll_period] (default 0.01 s) is the failure
    detector polling interval. *)

val on_message : 'v t -> src:int -> 'v msg -> unit

val decided : 'v t -> bool

val round : 'v t -> int
(** Current round (for tests/inspection). *)

val stop : 'v t -> unit
(** Cancel internal timers; used when tearing a process down. *)
