module Engine = Svs_sim.Engine

type 'v instance_state = {
  mutable proposals : (int * 'v) list;
  mutable decision : 'v option;
}

type 'v t = {
  engine : Engine.t;
  mutable members : int list;
  quorum : int;
  decision_delay : float;
  deliver : dst:int -> instance:int -> 'v -> unit;
  instances : (int, 'v instance_state) Hashtbl.t;
}

let create engine ~members ?quorum ?(decision_delay = 0.0) ~deliver () =
  if members = [] then invalid_arg "Arbiter.create: empty membership";
  let quorum =
    match quorum with
    | Some q ->
        if q <= 0 || q > List.length members then invalid_arg "Arbiter.create: bad quorum";
        q
    | None -> (List.length members / 2) + 1
  in
  { engine; members; quorum; decision_delay; deliver; instances = Hashtbl.create 7 }

let state t instance =
  match Hashtbl.find_opt t.instances instance with
  | Some st -> st
  | None ->
      let st = { proposals = []; decision = None } in
      Hashtbl.replace t.instances instance st;
      st

let propose t ~instance ~from v =
  let st = state t instance in
  if st.decision = None && not (List.mem_assoc from st.proposals) then begin
    st.proposals <- (from, v) :: st.proposals;
    if List.length st.proposals >= t.quorum then begin
      let from_min, value =
        List.fold_left
          (fun (best_p, best_v) (p, v) -> if p < best_p then (p, v) else (best_p, best_v))
          (List.hd st.proposals) (List.tl st.proposals)
      in
      ignore from_min;
      st.decision <- Some value;
      let notify () =
        List.iter (fun dst -> t.deliver ~dst ~instance value) t.members
      in
      ignore (Engine.schedule t.engine ~delay:t.decision_delay notify : Engine.handle)
    end
  end

let remove_member t p = t.members <- List.filter (fun q -> q <> p) t.members

let decided t ~instance =
  match Hashtbl.find_opt t.instances instance with
  | None -> false
  | Some st -> st.decision <> None
