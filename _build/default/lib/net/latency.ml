module Rng = Svs_sim.Rng

type t =
  | Zero
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Shifted_exponential of { base : float; mean : float }

let sample t rng =
  match t with
  | Zero -> 0.0
  | Constant d -> d
  | Uniform { lo; hi } -> Rng.uniform rng ~lo ~hi
  | Exponential { mean } -> Rng.exponential rng ~mean
  | Shifted_exponential { base; mean } -> base +. Rng.exponential rng ~mean

let mean = function
  | Zero -> 0.0
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean
  | Shifted_exponential { base; mean } -> base +. mean

let pp ppf = function
  | Zero -> Format.pp_print_string ppf "zero"
  | Constant d -> Format.fprintf ppf "constant(%gs)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%gs,%gs)" lo hi
  | Exponential { mean } -> Format.fprintf ppf "exp(mean=%gs)" mean
  | Shifted_exponential { base; mean } ->
      Format.fprintf ppf "shifted-exp(base=%gs,mean=%gs)" base mean
