(** Pluggable one-way link latency models. *)

type t =
  | Zero  (** Instantaneous delivery (same-timestamp event). *)
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Shifted_exponential of { base : float; mean : float }
      (** [base] fixed propagation plus an exponential queueing tail. *)

val sample : t -> Svs_sim.Rng.t -> float
(** A non-negative delay in seconds. *)

val mean : t -> float
(** Expected delay of the model. *)

val pp : Format.formatter -> t -> unit
