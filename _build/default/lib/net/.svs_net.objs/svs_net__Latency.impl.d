lib/net/latency.ml: Format Svs_sim
