lib/net/network.ml: Array Float Latency Printf Queue Svs_sim
