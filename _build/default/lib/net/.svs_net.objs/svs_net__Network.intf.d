lib/net/network.mli: Latency Svs_sim
