lib/net/latency.mli: Format Svs_sim
