(** Per-message obsolescence annotations and the relation they encode
    (paper §4.2).

    The application attaches an annotation to every multicast message;
    the protocol tests pairs of (id, annotation) to decide purging. Any
    relation decidable from annotations is an under-approximation of
    the application's (transitive) obsolescence relation: missing pairs
    only reduce purging, they never violate safety.

    The three encodings of the paper are supported:
    - {!Tag}: item tagging — same sender + same tag, higher sequence
      number obsoletes lower.
    - {!Enum}: message enumeration — the message lists all (transitive)
      predecessors it makes obsolete.
    - {!Kenum}: k-enumeration — a bitmap over the k preceding messages
      of the same sender. *)

type t =
  | Unrelated  (** Never obsoletes nor is obsoleted — plain reliable payload. *)
  | Tag of int
  | Enum of Msg_id.t list
  | Kenum of Bitvec.t

val obsoletes : older:Msg_id.t * t -> newer:Msg_id.t * t -> bool
(** [obsoletes ~older ~newer] is [true] iff the annotations encode
    [older ≺ newer]. Irreflexive and antisymmetric by construction
    (same-sender encodings require a strictly higher sequence number;
    [Enum] refuses [older = newer]). *)

val covers : older:Msg_id.t * t -> newer:Msg_id.t * t -> bool
(** The reflexive closure [older ⊑ newer]. *)

val pp : Format.formatter -> t -> unit
