type t = { sender : int; sn : int }

let make ~sender ~sn = { sender; sn }

let compare a b =
  match Int.compare a.sender b.sender with 0 -> Int.compare a.sn b.sn | c -> c

let equal a b = a.sender = b.sender && a.sn = b.sn

let precedes a b = a.sender = b.sender && a.sn < b.sn

let pp ppf t = Format.fprintf ppf "%d.%d" t.sender t.sn

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
