module Iset = Set.Make (Int)

type t = {
  stream : Kenum_stream.t;
  separate_commit : bool;
  last_pure_update : (int, int) Hashtbl.t; (* item -> sn of last pure update *)
  mutable recent_commits : (int * Iset.t) list; (* (sn, batch items), newest first *)
}

type emitted = {
  sn : int;
  item : int option;
  commit : bool;
  bitmap : Bitvec.t;
}

let create ~k ?(first_sn = 0) ?(separate_commit = false) () =
  {
    stream = Kenum_stream.create ~k ~first_sn ();
    separate_commit;
    last_pure_update = Hashtbl.create 64;
    recent_commits = [];
  }

let next_sn t = Kenum_stream.next_sn t.stream

let annotation e = Annotation.Kenum e.bitmap

let evict t =
  let horizon = next_sn t - Kenum_stream.k t.stream in
  t.recent_commits <-
    List.filter (fun (sn, _) -> sn >= horizon) t.recent_commits

let commit_direct t ~commit_sn ~items =
  let k = Kenum_stream.k t.stream in
  let per_item acc item =
    match Hashtbl.find_opt t.last_pure_update item with
    | Some sn when commit_sn - sn <= k -> (commit_sn - sn) :: acc
    | Some _ | None -> acc
  in
  let from_items = List.fold_left per_item [] items in
  let item_set = Iset.of_list items in
  let from_commits =
    List.filter_map
      (fun (sn, batch) ->
        if Iset.subset batch item_set && commit_sn - sn <= k then Some (commit_sn - sn)
        else None)
      t.recent_commits
  in
  from_items @ from_commits

let encode t ~items =
  if items = [] then invalid_arg "Batch_encoder.encode: empty batch";
  let distinct = List.sort_uniq compare items in
  if List.length distinct <> List.length items then
    invalid_arg "Batch_encoder.encode: duplicate items in batch";
  let emit_pure item =
    let sn = next_sn t in
    let bitmap = Kenum_stream.push t.stream ~direct:[] in
    { sn; item = Some item; commit = false; bitmap }
  in
  let emit_commit ~item =
    let sn = next_sn t in
    let direct = commit_direct t ~commit_sn:sn ~items in
    let bitmap = Kenum_stream.push t.stream ~direct in
    { sn; item; commit = true; bitmap }
  in
  let messages =
    (* Bind the pure updates before the commit: sequence numbers must
       follow emission order, and [@]'s operand evaluation order is
       unspecified. *)
    if t.separate_commit then begin
      let pures = List.map emit_pure items in
      let commit = emit_commit ~item:None in
      pures @ [ commit ]
    end
    else begin
      let rec split acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split (x :: acc) rest
      in
      let pure_items, last_item = split [] items in
      let pures = List.map emit_pure pure_items in
      let commit = emit_commit ~item:(Some last_item) in
      pures @ [ commit ]
    end
  in
  (* Update tracking: pure updates are individually coverable; the item
     piggybacking the commit is only coverable through the commit
     subset rule, so any stale entry for it must be dropped. *)
  List.iter
    (fun e ->
      match (e.item, e.commit) with
      | Some item, false -> Hashtbl.replace t.last_pure_update item e.sn
      | Some item, true -> Hashtbl.remove t.last_pure_update item
      | None, _ -> ())
    messages;
  let commit_sn = (List.nth messages (List.length messages - 1)).sn in
  t.recent_commits <- (commit_sn, Iset.of_list items) :: t.recent_commits;
  evict t;
  messages
