module Codec = Svs_codec.Codec
module W = Codec.Writer
module R = Codec.Reader

let write_msg_id w (id : Msg_id.t) =
  W.varint w id.Msg_id.sender;
  W.varint w id.Msg_id.sn

let read_msg_id r =
  let sender = R.varint r in
  let sn = R.varint r in
  Msg_id.make ~sender ~sn

let write_annotation w = function
  | Annotation.Unrelated -> W.uint8 w 0
  | Annotation.Tag tag ->
      W.uint8 w 1;
      W.zigzag w tag
  | Annotation.Enum preds ->
      W.uint8 w 2;
      W.list w write_msg_id preds
  | Annotation.Kenum bm ->
      W.uint8 w 3;
      W.varint w (Bitvec.k bm);
      W.raw w (Bitvec.to_bytes bm)

let read_annotation r =
  match R.uint8 r with
  | 0 -> Annotation.Unrelated
  | 1 -> Annotation.Tag (R.zigzag r)
  | 2 -> Annotation.Enum (R.list r read_msg_id)
  | 3 ->
      let k = R.varint r in
      Annotation.Kenum (Bitvec.of_bytes ~k (R.raw r ((k + 7) / 8)))
  | n -> raise (Codec.Malformed (Printf.sprintf "annotation tag %d" n))
