type t =
  | Unrelated
  | Tag of int
  | Enum of Msg_id.t list
  | Kenum of Bitvec.t

let obsoletes ~older:(oid, oann) ~newer:(nid, nann) =
  match nann with
  | Unrelated -> false
  | Tag ntag -> (
      match oann with
      | Tag otag -> otag = ntag && Msg_id.precedes oid nid
      | Unrelated | Enum _ | Kenum _ -> false)
  | Enum preds ->
      (not (Msg_id.equal oid nid))
      && (oid.Msg_id.sender <> nid.Msg_id.sender || Msg_id.precedes oid nid)
      && List.exists (Msg_id.equal oid) preds
  | Kenum bm ->
      oid.Msg_id.sender = nid.Msg_id.sender
      && Msg_id.precedes oid nid
      && Bitvec.get bm (nid.Msg_id.sn - oid.Msg_id.sn)

let covers ~older ~newer =
  Msg_id.equal (fst older) (fst newer) || obsoletes ~older ~newer

let pp ppf = function
  | Unrelated -> Format.pp_print_string ppf "unrelated"
  | Tag tag -> Format.fprintf ppf "tag(%d)" tag
  | Enum preds ->
      Format.fprintf ppf "enum(%a)" (Format.pp_print_list ~pp_sep:Format.pp_print_space Msg_id.pp) preds
  | Kenum bm -> Format.fprintf ppf "kenum%a" Bitvec.pp bm
