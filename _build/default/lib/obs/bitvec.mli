(** Fixed-width bit vector used by the k-enumeration encoding (§4.2).

    Bit [d] (for [1 <= d <= k]) set in a message's vector means "this
    message obsoletes the d-th preceding message of the same sender".
    The representation supports the two operations the paper calls out
    as making k-enumeration efficient: shifted [or] (transitive
    composition) and membership tests. Bits shifted beyond [k] are
    silently dropped: that loses purging opportunities but never
    fabricates obsolescence, so it is always safe. *)

type t

val create : k:int -> t
(** All-zero vector of width [k] (distances 1..k). *)

val k : t -> int

val copy : t -> t

val set : t -> int -> unit
(** [set t d] marks distance [d]. Distances [> k t] are dropped;
    distances [< 1] raise [Invalid_argument]. *)

val get : t -> int -> bool
(** [get t d] is false for any [d] outside [1..k]. *)

val is_empty : t -> bool

val or_shifted : into:t -> t -> shift:int -> unit
(** [or_shifted ~into src ~shift] adds, for every distance [d] set in
    [src], the distance [d + shift] to [into] (dropping overflow).
    With [shift] = the distance from the newer message to [src]'s
    message, this composes obsolescence transitively. *)

val union : into:t -> t -> unit
(** [or_shifted ~shift:0]. *)

val distances : t -> int list
(** Set distances, ascending. *)

val cardinal : t -> int

val equal : t -> t -> bool

val to_bytes : t -> string
(** Packed little-endian bitmap, [ceil (k/8)] bytes — the wire form
    whose compactness §4.2 argues for. *)

val of_bytes : k:int -> string -> t
(** Inverse of {!to_bytes}; the string must be exactly [ceil (k/8)]
    bytes. *)

val pp : Format.formatter -> t -> unit
