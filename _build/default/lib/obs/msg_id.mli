(** Unique message identifiers.

    A message is identified by its sender and a per-sender sequence
    number assigned in multicast order (the paper assumes uniquely
    identified messages and uses sender id + sequence number for the
    encodings of §4.2). *)

type t = { sender : int; sn : int }

val make : sender:int -> sn:int -> t

val compare : t -> t -> int
(** Lexicographic on (sender, sn). *)

val equal : t -> t -> bool

val precedes : t -> t -> bool
(** [precedes a b] iff both have the same sender and [a.sn < b.sn]
    (FIFO predecessor). *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
