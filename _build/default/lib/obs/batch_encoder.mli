(** Encoder for atomic multi-item composite updates (paper §4.1,
    Figure 2), built on the k-enumeration encoding.

    A composite update of several items is split into a batch of
    per-item update messages terminated by a commit; receivers apply a
    batch only once its commit is delivered (FIFO order guarantees the
    commit arrives last). Obsolescence rules:

    - pure (non-commit) updates never obsolete anything;
    - a batch's commit obsoletes, per item in the batch, the last pure
      update of that item from earlier batches;
    - a commit also obsoletes earlier commits whose item set is a
      subset of the new batch's items (the only sound relation between
      composite updates), absorbing their bitmaps so chains compose.

    By default the commit role is piggybacked on the batch's last
    update message (saving one message, as the paper suggests); with
    [separate_commit] a dedicated commit message is emitted instead,
    which keeps every per-item update individually purgeable. *)

type t

type emitted = {
  sn : int;
  item : int option;  (** [None] for a dedicated commit message. *)
  commit : bool;  (** Whether this message closes the batch. *)
  bitmap : Bitvec.t;
}

val create : k:int -> ?first_sn:int -> ?separate_commit:bool -> unit -> t

val encode : t -> items:int list -> emitted list
(** One batch; [items] must be non-empty and duplicate-free. Returns
    the messages in emission (FIFO) order, the last one being the
    commit. *)

val annotation : emitted -> Annotation.t

val next_sn : t -> int
