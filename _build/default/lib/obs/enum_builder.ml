type t = {
  window : int;
  closures : (Msg_id.t, Msg_id.Set.t) Hashtbl.t;
  order : Msg_id.t Queue.t; (* eviction order *)
}

let create ~window () =
  if window <= 0 then invalid_arg "Enum_builder.create: window must be positive";
  { window; closures = Hashtbl.create (2 * window); order = Queue.create () }

let evict t =
  while Queue.length t.order > t.window do
    Hashtbl.remove t.closures (Queue.pop t.order)
  done

let next t ~id ~direct =
  if List.exists (Msg_id.equal id) direct then
    invalid_arg "Enum_builder.next: a message cannot obsolete itself";
  let closure =
    List.fold_left
      (fun acc pred ->
        let acc = Msg_id.Set.add pred acc in
        match Hashtbl.find_opt t.closures pred with
        | None -> acc
        | Some preds -> Msg_id.Set.union preds acc)
      Msg_id.Set.empty direct
  in
  Hashtbl.replace t.closures id closure;
  Queue.add id t.order;
  evict t;
  (* Keep only the most recent [window] predecessors in the emitted
     enumeration: order by (sender, sn) descending and truncate. *)
  let all = Msg_id.Set.elements closure in
  let sorted = List.sort (fun a b -> Msg_id.compare b a) all in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take t.window sorted

let closure_of t id =
  Option.map Msg_id.Set.elements (Hashtbl.find_opt t.closures id)
