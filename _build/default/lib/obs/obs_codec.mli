(** Wire encoders for the obsolescence types (shared by the SVS wire
    protocol and the ordered-multicast toolkit). *)

module Codec = Svs_codec.Codec

val write_msg_id : Codec.Writer.t -> Msg_id.t -> unit

val read_msg_id : Codec.Reader.t -> Msg_id.t

val write_annotation : Codec.Writer.t -> Annotation.t -> unit

val read_annotation : Codec.Reader.t -> Annotation.t
