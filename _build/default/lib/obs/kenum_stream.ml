type t = {
  width : int;
  mutable next_sn : int;
  first_sn : int;
  ring : Bitvec.t option array; (* bitmap of message sn at ring.(sn mod width) *)
}

let create ~k ?(first_sn = 0) () =
  if k <= 0 then invalid_arg "Kenum_stream.create: k must be positive";
  { width = k; next_sn = first_sn; first_sn; ring = Array.make k None }

let k t = t.width

let next_sn t = t.next_sn

let bitmap_of t ~sn =
  if sn < t.first_sn || sn >= t.next_sn || t.next_sn - sn > t.width then None
  else t.ring.(sn mod t.width)

let push t ~direct =
  let sn = t.next_sn in
  let bm = Bitvec.create ~k:t.width in
  let add d =
    if d < 1 then invalid_arg "Kenum_stream.push: distance must be >= 1";
    if d <= t.width && sn - d >= t.first_sn then begin
      Bitvec.set bm d;
      (* Absorb the obsoleted message's own bitmap, shifted by its
         distance, to keep the encoded relation transitively closed
         within the window. *)
      match bitmap_of t ~sn:(sn - d) with
      | None -> ()
      | Some pred_bm -> Bitvec.or_shifted ~into:bm pred_bm ~shift:d
    end
  in
  List.iter add direct;
  t.ring.(sn mod t.width) <- Some bm;
  t.next_sn <- sn + 1;
  bm

let push_preds t ~preds =
  let sn = t.next_sn in
  let to_distance p =
    if p >= sn then invalid_arg "Kenum_stream.push_preds: predecessor not in the past";
    sn - p
  in
  push t ~direct:(List.map to_distance preds)
