(* 62 usable bits per word keeps every shift well inside OCaml's 63-bit
   native int, so [lsl]/[lsr] never touch the sign bit. *)
let word_bits = 62

let word_mask = (1 lsl word_bits) - 1

type t = { width : int; words : int array }

let create ~k =
  if k < 0 then invalid_arg "Bitvec.create: negative k";
  { width = k; words = Array.make (((k + word_bits - 1) / word_bits) + 1) 0 }

let k t = t.width

let copy t = { width = t.width; words = Array.copy t.words }

(* Distance d (1-based) lives at bit index d-1. *)
let set t d =
  if d < 1 then invalid_arg "Bitvec.set: distance must be >= 1";
  if d <= t.width then begin
    let i = d - 1 in
    t.words.(i / word_bits) <-
      t.words.(i / word_bits) lor (1 lsl (i mod word_bits))
  end

let get t d =
  if d < 1 || d > t.width then false
  else
    let i = d - 1 in
    t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

(* Clear any bits at indices >= width (distances > k). *)
let truncate t =
  let nwords = Array.length t.words in
  let full = t.width / word_bits in
  let rem = t.width mod word_bits in
  if full < nwords then begin
    if rem > 0 then t.words.(full) <- t.words.(full) land ((1 lsl rem) - 1)
    else t.words.(full) <- 0;
    for i = full + 1 to nwords - 1 do
      t.words.(i) <- 0
    done
  end

let or_shifted ~into src ~shift =
  if shift < 0 then invalid_arg "Bitvec.or_shifted: negative shift";
  let woff = shift / word_bits in
  let boff = shift mod word_bits in
  let n_into = Array.length into.words in
  for wi = Array.length src.words - 1 downto 0 do
    let w = src.words.(wi) in
    if w <> 0 then begin
      let lo = wi + woff in
      if lo < n_into then
        into.words.(lo) <- into.words.(lo) lor ((w lsl boff) land word_mask);
      if boff > 0 && lo + 1 < n_into then
        into.words.(lo + 1) <- into.words.(lo + 1) lor (w lsr (word_bits - boff))
    end
  done;
  truncate into

let union ~into src = or_shifted ~into src ~shift:0

let distances t =
  let acc = ref [] in
  for d = t.width downto 1 do
    if get t d then acc := d :: !acc
  done;
  !acc

let cardinal t = List.length (distances t)

let equal a b =
  a.width = b.width
  &&
  let max_words = Stdlib.max (Array.length a.words) (Array.length b.words) in
  let word arr i = if i < Array.length arr then arr.(i) else 0 in
  let rec check i =
    i >= max_words || (word a.words i = word b.words i && check (i + 1))
  in
  check 0

let to_bytes t =
  let nbytes = (t.width + 7) / 8 in
  String.init nbytes (fun byte ->
      let v = ref 0 in
      for bit = 0 to 7 do
        let d = (byte * 8) + bit + 1 in
        if get t d then v := !v lor (1 lsl bit)
      done;
      Char.chr !v)

let of_bytes ~k s =
  let nbytes = (k + 7) / 8 in
  if String.length s <> nbytes then invalid_arg "Bitvec.of_bytes: wrong length";
  let t = create ~k in
  String.iteri
    (fun byte c ->
      let v = Char.code c in
      for bit = 0 to 7 do
        let d = (byte * 8) + bit + 1 in
        if v land (1 lsl bit) <> 0 && d <= k then set t d
      done)
    s;
  t

let pp ppf t =
  Format.fprintf ppf "{k=%d;" t.width;
  List.iter (fun d -> Format.fprintf ppf " %d" d) (distances t);
  Format.fprintf ppf "}"
