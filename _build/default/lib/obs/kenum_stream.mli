(** Sender-side builder for the k-enumeration encoding.

    One stream per sender. For each outgoing message the application
    names the distances (in the sender's message stream) of the
    messages it *directly* obsoletes; the stream composes these with
    the remembered bitmaps of those messages (shift + or, as described
    in §4.2) so the emitted bitmap covers transitive predecessors up to
    the window [k]. *)

type t

val create : k:int -> ?first_sn:int -> unit -> t
(** [first_sn] (default 0) is the sequence number of the first message
    that will be emitted. *)

val k : t -> int

val next_sn : t -> int
(** Sequence number the next {!push} will use. *)

val push : t -> direct:int list -> Bitvec.t
(** [push t ~direct] registers the next message; [direct] lists the
    distances (>= 1) of directly-obsoleted earlier messages. Distances
    beyond [k] are dropped. Returns the composed bitmap to attach as
    [Annotation.Kenum]. *)

val push_preds : t -> preds:int list -> Bitvec.t
(** Like {!push} but with absolute predecessor sequence numbers rather
    than distances; predecessors [>= next_sn] raise. *)

val bitmap_of : t -> sn:int -> Bitvec.t option
(** The remembered bitmap of a recent message (within the window);
    [None] if it fell out. *)
