(** Sender-side builder for the message-enumeration encoding.

    Remembers the (transitively closed) predecessor sets of recent
    messages so that a new message enumerating its direct predecessors
    is emitted with the full transitive set, truncated to a window of
    recent messages (the optimisation discussed in §4.2: only recent
    members of the enumeration matter because distant pairs rarely
    share a buffer). *)

type t

val create : window:int -> unit -> t
(** [window] bounds how many recent messages' closures are remembered
    and how many predecessors an emitted enumeration carries. *)

val next : t -> id:Msg_id.t -> direct:Msg_id.t list -> Msg_id.t list
(** [next t ~id ~direct] registers message [id] which directly
    obsoletes [direct]; returns the transitive enumeration to attach
    as [Annotation.Enum]. Direct predecessors equal to [id] raise. *)

val closure_of : t -> Msg_id.t -> Msg_id.t list option
(** The remembered closure of a recent message. *)
