lib/obs/batch_encoder.mli: Annotation Bitvec
