lib/obs/enum_builder.ml: Hashtbl List Msg_id Option Queue
