lib/obs/bitvec.ml: Array Char Format List Stdlib String
