lib/obs/annotation.ml: Bitvec Format List Msg_id
