lib/obs/msg_id.ml: Format Int Map Set
