lib/obs/obs_codec.mli: Annotation Msg_id Svs_codec
