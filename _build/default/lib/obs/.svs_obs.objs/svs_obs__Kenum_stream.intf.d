lib/obs/kenum_stream.mli: Bitvec
