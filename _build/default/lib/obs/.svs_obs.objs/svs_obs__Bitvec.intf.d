lib/obs/bitvec.mli: Format
