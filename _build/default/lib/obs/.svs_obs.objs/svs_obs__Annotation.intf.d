lib/obs/annotation.mli: Bitvec Format Msg_id
