lib/obs/batch_encoder.ml: Annotation Bitvec Hashtbl Int Kenum_stream List Set
