lib/obs/obs_codec.ml: Annotation Bitvec Msg_id Printf Svs_codec
