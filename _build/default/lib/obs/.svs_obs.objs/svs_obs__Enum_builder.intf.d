lib/obs/enum_builder.mli: Msg_id
