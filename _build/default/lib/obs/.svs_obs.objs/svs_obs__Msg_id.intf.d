lib/obs/msg_id.mli: Format Map Set
