lib/obs/kenum_stream.ml: Array Bitvec List
