lib/codec/codec.mli:
