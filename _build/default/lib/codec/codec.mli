(** Binary wire codec primitives.

    A small, dependency-free serialization layer: little-endian fixed
    integers, LEB128 varints (with zigzag for signed values), floats,
    strings and byte blobs. Used by [Svs_core.Wire_codec] to give every
    protocol message a concrete wire size — which in turn drives the
    bandwidth-aware network model — and usable by applications for
    their payloads.

    Readers raise {!Truncated} on short input and {!Malformed} on
    invalid encodings; writers never fail. *)

exception Truncated

exception Malformed of string

module Writer : sig
  type t

  val create : ?initial_capacity:int -> unit -> t

  val length : t -> int

  val contents : t -> string

  val uint8 : t -> int -> unit
  (** Must fit a byte. *)

  val varint : t -> int -> unit
  (** Unsigned LEB128; the value must be non-negative. *)

  val zigzag : t -> int -> unit
  (** Signed varint (zigzag). *)

  val float64 : t -> float -> unit
  (** IEEE-754 binary64, little endian. *)

  val bool : t -> bool -> unit

  val bytes : t -> string -> unit
  (** Length-prefixed blob. *)

  val raw : t -> string -> unit
  (** Unprefixed raw bytes (reader must know the length). *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Length-prefixed sequence. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
end

module Reader : sig
  type t

  val of_string : string -> t

  val remaining : t -> int

  val eof : t -> bool

  val uint8 : t -> int

  val varint : t -> int

  val zigzag : t -> int

  val float64 : t -> float

  val bool : t -> bool

  val bytes : t -> string

  val raw : t -> int -> string

  val list : t -> (t -> 'a) -> 'a list

  val option : t -> (t -> 'a) -> 'a option
end

val round_trip : write:(Writer.t -> 'a -> unit) -> read:(Reader.t -> 'a) -> 'a -> 'a
(** Encode then decode (for tests). *)

val encoded_size : write:(Writer.t -> 'a -> unit) -> 'a -> int
(** Size in bytes of the encoding, without materialising consumers. *)
