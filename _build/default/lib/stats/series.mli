(** Experiment output containers and plain-text rendering.

    A {!t} is a named sequence of (x, y) points — one curve of a paper
    figure. {!render} prints one or several series sharing an x axis as
    an aligned text table, which is how [bench/main.exe] reports every
    reproduced figure. *)

type t = { label : string; points : (float * float) list }

val make : label:string -> (float * float) list -> t

val of_histogram : label:string -> ?normalise:bool -> Histogram.t -> t
(** One point per bucket; with [normalise] (default true) the y values
    are percentages of the total count. *)

val xs : t -> float list

val y_at : t -> float -> float option
(** Exact-x lookup. *)

val map_y : (float -> float) -> t -> t

(** Rendering several series against a shared x column. *)
val render :
  ?x_label:string ->
  ?x_format:(float -> string) ->
  ?y_format:(float -> string) ->
  Format.formatter ->
  t list ->
  unit

val render_table :
  Format.formatter -> header:string list -> rows:string list list -> unit
(** Generic aligned table printer used for the paper's in-text stats. *)

val to_csv : ?x_label:string -> t list -> string
(** The same shared-x table as {!render}, in CSV form (for plotting
    with external tools). Missing points are empty cells. *)
