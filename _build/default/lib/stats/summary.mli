(** Online univariate summary: count, mean, variance, min, max.

    Uses Welford's algorithm, so it is numerically stable and O(1) per
    observation. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Sample (n-1) variance; [nan] when fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val total : t -> float

val merge : t -> t -> t
(** [merge a b] summarises the union of both observation streams. *)

val pp : Format.formatter -> t -> unit
