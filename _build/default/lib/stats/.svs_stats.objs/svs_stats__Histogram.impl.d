lib/stats/histogram.ml: Format Int List Map Option
