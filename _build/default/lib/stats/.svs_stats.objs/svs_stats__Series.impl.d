lib/stats/series.ml: Array Buffer Float Format Histogram List Printf Set Stdlib String
