lib/stats/timeline.ml: Float List Printf
