lib/stats/series.mli: Format Histogram
