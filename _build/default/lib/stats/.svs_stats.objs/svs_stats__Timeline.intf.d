lib/stats/timeline.mli:
