(** Integer-bucket histogram with percentile queries.

    Buckets are arbitrary integers (e.g. message distances, queue
    lengths, item ranks); counts grow on demand. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one observation of bucket [b]. *)

val add_many : t -> int -> int -> unit
(** [add_many t b n] records [n] observations of bucket [b]. *)

val count : t -> int
(** Total observations. *)

val bucket_count : t -> int -> int
(** Observations recorded for exactly this bucket. *)

val buckets : t -> (int * int) list
(** All (bucket, count) pairs with non-zero count, ascending bucket. *)

val fraction : t -> int -> float
(** [fraction t b] is [bucket_count t b / count t]. *)

val fraction_le : t -> int -> float
(** Cumulative fraction of observations with bucket [<= b]. *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0,100]: smallest bucket such that at
    least [p]% of observations are [<=] it.
    @raise Invalid_argument on an empty histogram. *)

val mean : t -> float

val min_bucket : t -> int option

val max_bucket : t -> int option

val pp : Format.formatter -> t -> unit
