type t = { label : string; points : (float * float) list }

let make ~label points = { label; points }

let of_histogram ~label ?(normalise = true) h =
  let total = float_of_int (Histogram.count h) in
  let scale c = if normalise then 100.0 *. float_of_int c /. total else float_of_int c in
  let points =
    List.map (fun (b, c) -> (float_of_int b, scale c)) (Histogram.buckets h)
  in
  { label; points }

let xs t = List.map fst t.points

let y_at t x = List.assoc_opt x t.points

let map_y f t = { t with points = List.map (fun (x, y) -> (x, f y)) t.points }

let default_format v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let pad width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

let render_table ppf ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc row -> Stdlib.max acc (List.length row)) 0 all in
  let widths = Array.make cols 0 in
  let account row =
    List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row
  in
  List.iter account all;
  let print_row row =
    let cells = List.mapi (fun i cell -> pad widths.(i) cell) row in
    Format.fprintf ppf "%s@," (String.concat "  " cells)
  in
  Format.fprintf ppf "@[<v>";
  print_row header;
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Format.fprintf ppf "%s@," rule;
  List.iter print_row rows;
  Format.fprintf ppf "@]@."

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv ?(x_label = "x") series =
  let module Fset = Set.Make (Float) in
  let all_xs =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc (x, _) -> Fset.add x acc) acc s.points)
      Fset.empty series
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (List.map csv_escape (x_label :: List.map (fun s -> s.label) series)));
  Buffer.add_char buf '\n';
  Fset.iter
    (fun x ->
      let cells =
        default_format x
        :: List.map
             (fun s -> match y_at s x with None -> "" | Some y -> Printf.sprintf "%.6g" y)
             series
      in
      Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
      Buffer.add_char buf '\n')
    all_xs;
  Buffer.contents buf

let render ?(x_label = "x") ?(x_format = default_format) ?(y_format = default_format) ppf
    series =
  (* Collect the union of x values across the series, ascending. *)
  let module Fset = Set.Make (Float) in
  let all_xs =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc (x, _) -> Fset.add x acc) acc s.points)
      Fset.empty series
  in
  let header = x_label :: List.map (fun s -> s.label) series in
  let row x =
    x_format x
    :: List.map
         (fun s -> match y_at s x with None -> "-" | Some y -> y_format y)
         series
  in
  let rows = List.map row (Fset.elements all_xs) in
  render_table ppf ~header ~rows
