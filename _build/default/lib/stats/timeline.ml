type segment = { value : float; span : float }

type t = {
  mutable segments : segment list; (* reversed *)
  mutable last_time : float;
  mutable last_value : float;
  mutable finished : bool;
}

let create ?(start = 0.0) ?(value = 0.0) () =
  { segments = []; last_time = start; last_value = value; finished = false }

let close_segment t ~time =
  if time < t.last_time then
    invalid_arg
      (Printf.sprintf "Timeline: non-monotonic time %g < %g" time t.last_time);
  let span = time -. t.last_time in
  if span > 0.0 then t.segments <- { value = t.last_value; span } :: t.segments;
  t.last_time <- time

let set t ~time v =
  if t.finished then invalid_arg "Timeline.set: already finished";
  close_segment t ~time;
  t.last_value <- v

let finish t ~time =
  if not t.finished then begin
    close_segment t ~time;
    t.finished <- true
  end

let duration t = List.fold_left (fun acc s -> acc +. s.span) 0.0 t.segments

let mean t =
  let dur = duration t in
  if dur <= 0.0 then nan
  else
    let weighted =
      List.fold_left (fun acc s -> acc +. (s.value *. s.span)) 0.0 t.segments
    in
    weighted /. dur

let max_value t =
  let from_segments =
    List.fold_left (fun acc s -> Float.max acc s.value) neg_infinity t.segments
  in
  if t.finished then from_segments else Float.max from_segments t.last_value

let time_at t pred =
  List.fold_left (fun acc s -> if pred s.value then acc +. s.span else acc) 0.0 t.segments

let fraction_at t pred =
  let dur = duration t in
  if dur <= 0.0 then 0.0 else time_at t pred /. dur

let current t = t.last_value
