module Imap = Map.Make (Int)

type t = { mutable counts : int Imap.t; mutable total : int }

let create () = { counts = Imap.empty; total = 0 }

let add_many t b n =
  if n < 0 then invalid_arg "Histogram.add_many: negative count";
  if n > 0 then begin
    t.counts <-
      Imap.update b (function None -> Some n | Some c -> Some (c + n)) t.counts;
    t.total <- t.total + n
  end

let add t b = add_many t b 1

let count t = t.total

let bucket_count t b = match Imap.find_opt b t.counts with None -> 0 | Some c -> c

let buckets t = Imap.bindings t.counts

let fraction t b =
  if t.total = 0 then 0.0 else float_of_int (bucket_count t b) /. float_of_int t.total

let fraction_le t b =
  if t.total = 0 then 0.0
  else
    let below =
      Imap.fold (fun k c acc -> if k <= b then acc + c else acc) t.counts 0
    in
    float_of_int below /. float_of_int t.total

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty histogram";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  let target = p /. 100.0 *. float_of_int t.total in
  let result = ref None in
  let acc = ref 0 in
  Imap.iter
    (fun b c ->
      if !result = None then begin
        acc := !acc + c;
        if float_of_int !acc >= target then result := Some b
      end)
    t.counts;
  match !result with
  | Some b -> b
  | None ->
      (* p = 0 with target 0: the smallest bucket. *)
      fst (Imap.min_binding t.counts)

let mean t =
  if t.total = 0 then nan
  else
    let sum = Imap.fold (fun b c acc -> acc +. (float_of_int b *. float_of_int c)) t.counts 0.0 in
    sum /. float_of_int t.total

let min_bucket t = Option.map fst (Imap.min_binding_opt t.counts)

let max_bucket t = Option.map fst (Imap.max_binding_opt t.counts)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (b, c) -> Format.fprintf ppf "%6d: %d (%.1f%%)@," b c (100.0 *. fraction t b))
    (buckets t);
  Format.fprintf ppf "@]"
