(** Time-weighted statistics of a piecewise-constant signal.

    Record the signal's value at each change point; queries weight each
    value by how long it was held. Used for buffer-occupancy and
    blocked/idle-fraction measurements in the simulations. *)

type t

val create : ?start:float -> ?value:float -> unit -> t
(** A signal holding [value] (default 0) from time [start] (default 0). *)

val set : t -> time:float -> float -> unit
(** [set t ~time v]: the signal takes value [v] at [time]. [time] must
    be monotonically non-decreasing across calls. *)

val finish : t -> time:float -> unit
(** Close the observation window at [time] (weights the last segment). *)

val duration : t -> float
(** Observed span (after [finish], or up to the last change point). *)

val mean : t -> float
(** Time-weighted mean value; [nan] if the span is empty. *)

val max_value : t -> float

val time_at : t -> (float -> bool) -> float
(** [time_at t pred] is the total time during which [pred value] held. *)

val fraction_at : t -> (float -> bool) -> float
(** [time_at] normalised by {!duration}. *)

val current : t -> float
