(** Conversion of item-access traces into annotated message streams.

    Each round's modifications become one atomic batch (§4.1): pure
    per-item updates followed by a commit, encoded with k-enumeration
    bitmaps by {!Svs_obs.Batch_encoder}. Creations and destructions are
    encoded as never-reused pseudo-items so they can never be purged
    (the paper: they "must be reliably delivered"). *)

type kind =
  | Update  (** Pure per-item update (not a commit). *)
  | Commit  (** Batch-closing message (may carry the last update). *)
  | Create
  | Destroy

type message = {
  sn : int;
  round : int;
  time : float;  (** Emission time derived from the round rate. *)
  item : int option;  (** Real item for updates/creates/destroys. *)
  kind : kind;
  ann : Svs_obs.Annotation.t;
}

val of_trace : ?k:int -> ?sender:int -> Trace.t -> message array
(** [k] is the k-enumeration window (default 64; the paper uses twice
    the buffer size). Message times are spread uniformly within each
    round. [sender] (default 0) is used in message ids. *)

val id_of : sender:int -> message -> Svs_obs.Msg_id.t

val mean_rate : message array -> Trace.t -> float
(** Average offered load in messages per second. *)
