lib/workload/trace_stats.mli: Format Stream Svs_stats Trace
