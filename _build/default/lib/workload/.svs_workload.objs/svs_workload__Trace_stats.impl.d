lib/workload/trace_stats.ml: Array Format Hashtbl List Option Stream Svs_obs Svs_stats Trace
