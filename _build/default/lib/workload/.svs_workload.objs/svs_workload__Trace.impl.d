lib/workload/trace.ml: Array Format List
