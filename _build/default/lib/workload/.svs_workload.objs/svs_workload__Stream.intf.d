lib/workload/stream.mli: Svs_obs Trace
