lib/workload/stream.ml: Array List Svs_obs Trace
