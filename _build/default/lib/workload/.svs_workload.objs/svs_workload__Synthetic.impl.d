lib/workload/synthetic.ml: Array List Svs_sim Trace
