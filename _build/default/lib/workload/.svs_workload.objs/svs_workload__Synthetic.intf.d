lib/workload/synthetic.mli: Trace
