module Rng = Svs_sim.Rng

type config = {
  rounds : int;
  round_rate : float;
  persistent_items : int;
  zipf_s : float;
  action_updates_mean : float;
  quiet_updates_mean : float;
  action_dwell : float;
  quiet_dwell : float;
  spawn_probability : float;
  volatile_lifetime : float;
  seed : int;
}

let default =
  {
    rounds = 11696;
    round_rate = 30.0;
    persistent_items = 42;
    zipf_s = 1.2;
    action_updates_mean = 3.0;
    quiet_updates_mean = 0.45;
    action_dwell = 20.0;
    quiet_dwell = 60.0;
    spawn_probability = 0.11;
    volatile_lifetime = 4.0;
    seed = 2002;
  }

type volatile = { vitem : int; mutable life : int }

let generate config =
  if config.rounds <= 0 then invalid_arg "Synthetic.generate: rounds must be positive";
  let rng = Rng.create ~seed:config.seed in
  let zipf = Rng.Zipf.create ~n:config.persistent_items ~s:config.zipf_s in
  let next_volatile = ref config.persistent_items in
  let volatiles : volatile list ref = ref [] in
  (* Two-state Markov-modulated load: bursts of action (fire-fights)
     alternate with quiet exploration, giving the bursty traffic the
     paper observes (a receiver must run faster than the mean rate to
     absorb the bursts). *)
  let in_action = ref false in
  (* Participants of the current fire-fight: bursts concentrate on a
     handful of items, so consecutive updates of the same item sit
     close together in the stream (short obsolescence distances). *)
  let combatants = ref [||] in
  let enter_action () =
    in_action := true;
    combatants :=
      Array.init 5 (fun _ -> Rng.Zipf.sample zipf rng - 1)
  in
  let make_round _ =
    let ops = ref [] in
    let emit item kind = ops := { Trace.item; kind } :: !ops in
    (if !in_action then begin
       if Rng.chance rng (1.0 /. config.action_dwell) then in_action := false
     end
     else if Rng.chance rng (1.0 /. config.quiet_dwell) then enter_action ());
    let lambda = if !in_action then config.action_updates_mean else config.quiet_updates_mean in
    (* Persistent-item updates: Poisson count, Zipf-picked items. *)
    let count = Rng.poisson rng ~lambda in
    let picked = ref [] in
    for _ = 1 to count do
      let item =
        if !in_action && Array.length !combatants > 0 && Rng.chance rng 0.85 then
          Rng.pick rng !combatants
        else Rng.Zipf.sample zipf rng - 1
      in
      if not (List.mem item !picked) then begin
        picked := item :: !picked;
        emit item Trace.Update
      end
    done;
    (* Volatile items move every round while alive. *)
    List.iter
      (fun v ->
        v.life <- v.life - 1;
        if v.life > 0 then emit v.vitem Trace.Update else emit v.vitem Trace.Destroy)
      !volatiles;
    volatiles := List.filter (fun v -> v.life > 0) !volatiles;
    (* Spawns: fire-fights spawn projectiles, quiet phases rarely. *)
    let spawn_p = config.spawn_probability *. (if !in_action then 2.5 else 0.4) in
    if Rng.chance rng spawn_p then begin
      let item = !next_volatile in
      incr next_volatile;
      let life = 1 + Rng.geometric rng ~p:(1.0 /. config.volatile_lifetime) in
      volatiles := { vitem = item; life } :: !volatiles;
      emit item Trace.Create
    end;
    let active = config.persistent_items + List.length !volatiles in
    { Trace.ops = List.rev !ops; active }
  in
  { Trace.rounds = Array.init config.rounds make_round; round_rate = config.round_rate }

let paper_session ?(seed = default.seed) () = generate { default with seed }
