(** Synthetic Quake-like traffic generator, calibrated to the paper's
    published session statistics (§5.2).

    The model has two item populations:
    - {e persistent} items (players, doors, platforms): modified round
      by round with Zipf-distributed popularity — a couple of hot
      items (the players near the action) and a long tail;
    - {e volatile} items (projectiles): created with some probability
      per round, updated every round while alive (they move each
      frame), destroyed after a geometric lifetime. Creations and
      destructions are reliable (never obsoleted).

    With the default configuration the generated trace lands near the
    paper's numbers: ≈42 active items, ≈1.4 modified per round, ≈40%
    of messages never obsolete, and obsolescence distances
    concentrated within ten messages. *)

type config = {
  rounds : int;
  round_rate : float;  (** Frames per second (paper: ~30). *)
  persistent_items : int;
  zipf_s : float;  (** Popularity skew of persistent items. *)
  action_updates_mean : float;
      (** Poisson mean of persistent-item updates per round during an
          action burst (a fire-fight). *)
  quiet_updates_mean : float;  (** Same, during quiet exploration. *)
  action_dwell : float;  (** Mean burst length in rounds. *)
  quiet_dwell : float;  (** Mean quiet-phase length in rounds. *)
  spawn_probability : float;
      (** Base chance per round that a volatile item is created
          (amplified during bursts). *)
  volatile_lifetime : float;  (** Mean lifetime in rounds. *)
  seed : int;
}

val default : config
(** Calibrated to the paper's 5-player session. *)

val generate : config -> Trace.t

val paper_session : ?seed:int -> unit -> Trace.t
(** The default configuration at the paper's length (11696 rounds). *)
