module Annotation = Svs_obs.Annotation
module Bitvec = Svs_obs.Bitvec
module Histogram = Svs_stats.Histogram

type summary = {
  rounds : int;
  duration : float;
  avg_active_items : float;
  avg_modified_per_round : float;
  messages : int;
  message_rate : float;
  never_obsolete_share : float;
}

(* For every message, the distance to the closest later message whose
   bitmap (or enumeration) directly names it; None if never obsoleted.
   Kenum bitmaps name predecessors by distance, so one pass over the
   newer messages suffices. *)
let closest_cover_distances (messages : Stream.message array) =
  let n = Array.length messages in
  (* Map sn -> index (sns are dense but start at the encoder's base). *)
  let index_of_sn = Hashtbl.create n in
  Array.iteri (fun i m -> Hashtbl.replace index_of_sn m.Stream.sn i) messages;
  let best = Array.make n None in
  let note ~older_sn ~dist =
    match Hashtbl.find_opt index_of_sn older_sn with
    | None -> ()
    | Some i -> (
        match best.(i) with
        | Some d when d <= dist -> ()
        | Some _ | None -> best.(i) <- Some dist)
  in
  (* Tag relations are implicit (same tag, higher sequence number), so
     they are reconstructed from the last occurrence of each tag. *)
  let last_tag : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun m ->
      match m.Stream.ann with
      | Annotation.Kenum bm ->
          List.iter (fun d -> note ~older_sn:(m.Stream.sn - d) ~dist:d) (Bitvec.distances bm)
      | Annotation.Enum preds ->
          List.iter
            (fun (id : Svs_obs.Msg_id.t) ->
              note ~older_sn:id.Svs_obs.Msg_id.sn ~dist:(m.Stream.sn - id.Svs_obs.Msg_id.sn))
            preds
      | Annotation.Tag tag ->
          (match Hashtbl.find_opt last_tag tag with
          | Some prev -> note ~older_sn:prev ~dist:(m.Stream.sn - prev)
          | None -> ());
          Hashtbl.replace last_tag tag m.Stream.sn
      | Annotation.Unrelated -> ())
    messages;
  best

let cover_distances = closest_cover_distances

let obsolescence_distances messages =
  let h = Histogram.create () in
  Array.iter
    (function Some d -> Histogram.add h d | None -> ())
    (closest_cover_distances messages);
  h

let never_obsolete_share messages =
  let n = Array.length messages in
  if n = 0 then 0.0
  else
    let never =
      Array.fold_left
        (fun acc cover -> if cover = None then acc + 1 else acc)
        0
        (closest_cover_distances messages)
    in
    float_of_int never /. float_of_int n

let summarise trace messages =
  let rounds = Trace.round_count trace in
  let active_total =
    Array.fold_left (fun acc r -> acc +. float_of_int r.Trace.active) 0.0 trace.Trace.rounds
  in
  let modified_total =
    Array.fold_left (fun acc r -> acc +. float_of_int (List.length r.Trace.ops)) 0.0
      trace.Trace.rounds
  in
  {
    rounds;
    duration = Trace.duration trace;
    avg_active_items = (if rounds = 0 then 0.0 else active_total /. float_of_int rounds);
    avg_modified_per_round =
      (if rounds = 0 then 0.0 else modified_total /. float_of_int rounds);
    messages = Array.length messages;
    message_rate = Stream.mean_rate messages trace;
    never_obsolete_share = never_obsolete_share messages;
  }

let rank_frequencies trace =
  let rounds_with : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Trace.iter_rounds
    (fun _ { Trace.ops; _ } ->
      let items =
        List.sort_uniq compare
          (List.filter_map
             (fun op -> if op.Trace.kind = Trace.Update then Some op.Trace.item else None)
             ops)
      in
      List.iter
        (fun item ->
          Hashtbl.replace rounds_with item
            (1 + Option.value ~default:0 (Hashtbl.find_opt rounds_with item)))
        items)
    trace;
  let counts = Hashtbl.fold (fun _ c acc -> c :: acc) rounds_with [] in
  let sorted = List.sort (fun a b -> compare b a) counts in
  let total_rounds = float_of_int (Trace.round_count trace) in
  List.mapi (fun i c -> (i + 1, 100.0 *. float_of_int c /. total_rounds)) sorted

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>rounds: %d (%.1f s)@,avg active items/round: %.2f@,avg modified items/round: \
     %.2f@,messages: %d (%.1f msg/s)@,never-obsolete share: %.2f%%@]"
    s.rounds s.duration s.avg_active_items s.avg_modified_per_round s.messages s.message_rate
    (100.0 *. s.never_obsolete_share)
