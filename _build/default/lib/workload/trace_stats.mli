(** Statistics the paper reports about the instrumented Quake session
    (§5.2, Figure 3, and the in-text numbers reproduced as table T1). *)

type summary = {
  rounds : int;
  duration : float;  (** seconds *)
  avg_active_items : float;  (** paper: 42.33 *)
  avg_modified_per_round : float;  (** paper: 1.39 *)
  messages : int;
  message_rate : float;  (** msg/s offered load *)
  never_obsolete_share : float;  (** paper: 41.88% (as a fraction) *)
}

val summarise : Trace.t -> Stream.message array -> summary

val rank_frequencies : Trace.t -> (int * float) list
(** Figure 3(a): [(rank, % of rounds in which the rank-th most-modified
    item was modified)], rank 1 first. Only Update ops count. *)

val obsolescence_distances : Stream.message array -> Svs_stats.Histogram.t
(** Figure 3(b): per message that eventually becomes obsolete, the
    distance (in messages) to the closest later message that directly
    obsoletes it. *)

val never_obsolete_share : Stream.message array -> float
(** Fraction of messages never obsoleted by any later message. *)

val cover_distances : Stream.message array -> int option array
(** Per message, the distance to the closest later message that
    directly obsoletes it ([None] = never obsoleted). Basis of
    {!obsolescence_distances} and {!never_obsolete_share}; also used by
    experiments that need to know whether a drop lost live content. *)

val pp_summary : Format.formatter -> summary -> unit
