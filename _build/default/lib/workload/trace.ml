type kind = Update | Create | Destroy

type op = { item : int; kind : kind }

type round = { ops : op list; active : int }

type t = { rounds : round array; round_rate : float }

let round_count t = Array.length t.rounds

let duration t = float_of_int (round_count t) /. t.round_rate

let total_ops t = Array.fold_left (fun acc r -> acc + List.length r.ops) 0 t.rounds

let iter_rounds f t = Array.iteri f t.rounds

let pp_kind ppf = function
  | Update -> Format.pp_print_string ppf "update"
  | Create -> Format.pp_print_string ppf "create"
  | Destroy -> Format.pp_print_string ppf "destroy"
