(** Item-access traces (paper §5.2).

    The evaluation consumes the game's update pattern as a trace: a
    sequence of rounds, each modifying, creating and destroying items.
    Traces come from the synthetic generator ({!Synthetic}), from the
    arena game (svs_game), or are hand-built in tests. *)

type kind =
  | Update  (** New value for an existing item — obsoletes older values. *)
  | Create  (** Item enters the world — must be delivered reliably. *)
  | Destroy  (** Item leaves the world — must be delivered reliably. *)

type op = { item : int; kind : kind }

type round = {
  ops : op list;  (** Modifications in this round, in order. *)
  active : int;  (** Items alive during this round. *)
}

type t = {
  rounds : round array;
  round_rate : float;  (** Rounds per second (the game's frame rate). *)
}

val round_count : t -> int

val duration : t -> float
(** Trace length in seconds. *)

val total_ops : t -> int

val iter_rounds : (int -> round -> unit) -> t -> unit

val pp_kind : Format.formatter -> kind -> unit
