module Annotation = Svs_obs.Annotation
module Batch_encoder = Svs_obs.Batch_encoder
module Msg_id = Svs_obs.Msg_id

type kind = Update | Commit | Create | Destroy

type message = {
  sn : int;
  round : int;
  time : float;
  item : int option;
  kind : kind;
  ann : Annotation.t;
}

let of_trace ?(k = 64) ?sender trace =
  ignore sender;
  let enc = Batch_encoder.create ~k () in
  let messages = ref [] in
  let count = ref 0 in
  (* Pseudo-item ids for create/destroy ops: never reused, so their
     messages are never covered by later commits. *)
  let next_pseudo = ref (-1) in
  Trace.iter_rounds
    (fun round_ix { Trace.ops; _ } ->
      if ops <> [] then begin
        (* Updates first; creations/destructions close the batch. *)
        let updates, reliable =
          List.partition (fun op -> op.Trace.kind = Trace.Update) ops
        in
        let update_items =
          List.sort_uniq compare (List.map (fun op -> op.Trace.item) updates)
        in
        let pseudo =
          List.map
            (fun op ->
              let p = !next_pseudo in
              decr next_pseudo;
              (p, op))
            reliable
        in
        let batch_items = update_items @ List.map fst pseudo in
        let emitted = Batch_encoder.encode enc ~items:batch_items in
        let base_time = float_of_int round_ix /. trace.Trace.round_rate in
        let n = List.length emitted in
        let dt = 1.0 /. trace.Trace.round_rate /. float_of_int (n + 1) in
        List.iteri
          (fun i e ->
            let kind, item =
              match e.Batch_encoder.item with
              | None -> (Commit, None)
              | Some raw when raw >= 0 ->
                  ((if e.Batch_encoder.commit then Commit else Update), Some raw)
              | Some raw -> (
                  match List.assoc_opt raw pseudo with
                  | Some op ->
                      ( (match op.Trace.kind with
                        | Trace.Create -> Create
                        | Trace.Destroy -> Destroy
                        | Trace.Update -> assert false),
                        Some op.Trace.item )
                  | None -> assert false)
            in
            incr count;
            messages :=
              {
                sn = e.Batch_encoder.sn;
                round = round_ix;
                time = base_time +. (float_of_int (i + 1) *. dt);
                item;
                kind;
                ann = Batch_encoder.annotation e;
              }
              :: !messages)
          emitted
      end)
    trace;
  Array.of_list (List.rev !messages)

let id_of ~sender m = Msg_id.make ~sender ~sn:m.sn

let mean_rate messages trace =
  let dur = Trace.duration trace in
  if dur <= 0.0 then 0.0 else float_of_int (Array.length messages) /. dur
