lib/detector/oracle.mli:
