lib/detector/oracle.ml: Array List
