lib/detector/heartbeat.mli: Svs_sim
