lib/detector/heartbeat.ml: List Svs_sim
