lib/game/arena.ml: Array Float Hashtbl List Stdlib Svs_sim Svs_workload
