lib/game/arena.mli: Hashtbl Svs_workload
