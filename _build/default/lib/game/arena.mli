(** A small multiplayer arena game server.

    This is the repository's stand-in for the Quake server the paper
    instruments (§5.1–5.2): the game state is a collection of items
    (players, pickups, projectiles), each holding position/velocity in
    3D plus type-specific attributes; the game advances in rounds
    (frames); per round, items are updated, created (projectiles
    fired) and destroyed (projectiles expiring, targets hit).

    The per-round {!event} list is exactly what a primary server
    multicasts to its replicas, and {!simulate} records it as a
    {!Svs_workload.Trace.t} so the evaluation can run on organically
    generated traffic as well as on the calibrated synthetic model. *)

type config = {
  players : int;
  pickups : int;
  arena_size : float;  (** Cube side length. *)
  round_rate : float;  (** Frames per second. *)
  shoot_probability : float;  (** Per active player per round. *)
  projectile_speed : float;
  projectile_ttl : int;  (** Rounds before a projectile expires. *)
  pickup_respawn_probability : float;
  seed : int;
}

val default_config : config
(** A 5-player session like the paper's. *)

type vec = { x : float; y : float; z : float }

type item_kind = Player | Pickup | Projectile

type item_state = {
  kind : item_kind;
  position : vec;
  velocity : vec;
  attribute : int;  (** Health for players, charge for pickups, owner for projectiles. *)
}

type event =
  | Updated of int * item_state
  | Created of int * item_state
  | Destroyed of int

type t

val create : config -> t

val restore : config -> round:int -> (int * item_state) list -> t
(** Rebuild a server from replicated world state (fail-over: a backup
    that just became primary continues the game from its store).
    Projectile time-to-live is not part of the replicated state, so
    restored projectiles get a fresh [projectile_ttl] — the same
    conservative refresh a real server would apply. *)

val step : t -> event list
(** Advance one round; the events are the state changes a primary
    would replicate, in emission order. *)

val round : t -> int

val items : t -> (int * item_state) list
(** Current world state, sorted by item id. *)

val item_count : t -> int

val apply : (int, item_state) Hashtbl.t -> event -> unit
(** Replica-side state transition: apply one replicated event to a
    materialised copy of the world. *)

val simulate : ?rounds:int -> config -> Svs_workload.Trace.t
(** Run the game for [rounds] (default 11696, the paper's session
    length) and record the modification trace. *)
