module Rng = Svs_sim.Rng

type config = {
  players : int;
  pickups : int;
  arena_size : float;
  round_rate : float;
  shoot_probability : float;
  projectile_speed : float;
  projectile_ttl : int;
  pickup_respawn_probability : float;
  seed : int;
}

let default_config =
  {
    players = 5;
    pickups = 37;
    arena_size = 100.0;
    round_rate = 30.0;
    shoot_probability = 0.09;
    projectile_speed = 3.0;
    projectile_ttl = 5;
    pickup_respawn_probability = 0.002;
    seed = 42;
  }

type vec = { x : float; y : float; z : float }

type item_kind = Player | Pickup | Projectile

type item_state = {
  kind : item_kind;
  position : vec;
  velocity : vec;
  attribute : int;
}

type event =
  | Updated of int * item_state
  | Created of int * item_state
  | Destroyed of int

type projectile = { mutable ttl : int; owner : int }

type t = {
  config : config;
  rng : Rng.t;
  world : (int, item_state) Hashtbl.t;
  projectiles : (int, projectile) Hashtbl.t;
  (* Players near the action move almost every round; others idle.
     Activity levels are fixed per player, giving the skewed update
     pattern of Figure 3(a). *)
  activity : float array;
  mutable next_item : int;
  mutable round : int;
}

let zero = { x = 0.0; y = 0.0; z = 0.0 }

let vec_add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }

let vec_scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }

let vec_dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y and dz = a.z -. b.z in
  (dx *. dx) +. (dy *. dy) +. (dz *. dz)

(* Ground-plane distance: items rest on the floor, so interaction
   radius ignores height. *)
let ground_dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let random_position rng size =
  { x = Rng.float rng size; y = Rng.float rng size; z = Rng.float rng size }

let random_direction rng =
  let v =
    {
      x = Rng.uniform rng ~lo:(-1.0) ~hi:1.0;
      y = Rng.uniform rng ~lo:(-1.0) ~hi:1.0;
      z = Rng.uniform rng ~lo:(-0.2) ~hi:0.2;
    }
  in
  let n = sqrt (vec_dist2 v zero) in
  if n < 1e-6 then { x = 1.0; y = 0.0; z = 0.0 } else vec_scale (1.0 /. n) v

let clamp_to_arena size p =
  let c v = Float.min (Float.max v 0.0) size in
  { x = c p.x; y = c p.y; z = c p.z }

let create config =
  if config.players <= 0 then invalid_arg "Arena.create: need at least one player";
  let rng = Rng.create ~seed:config.seed in
  let world = Hashtbl.create 64 in
  for p = 0 to config.players - 1 do
    Hashtbl.replace world p
      {
        kind = Player;
        position = random_position rng config.arena_size;
        velocity = zero;
        attribute = 100;
      }
  done;
  for i = 0 to config.pickups - 1 do
    Hashtbl.replace world (config.players + i)
      {
        kind = Pickup;
        position = random_position rng config.arena_size;
        velocity = zero;
        attribute = 25;
      }
  done;
  (* Activity ~ 1/(rank^0.9): the most active player moves in roughly
     a quarter of the rounds, matching the skew of Figure 3(a). *)
  let activity =
    Array.init config.players (fun i -> 0.33 /. Float.pow (float_of_int (i + 1)) 0.9)
  in
  {
    config;
    rng;
    world;
    projectiles = Hashtbl.create 16;
    activity;
    next_item = config.players + config.pickups;
    round = 0;
  }

let restore config ~round items =
  let t = create config in
  Hashtbl.reset t.world;
  Hashtbl.reset t.projectiles;
  let max_id = ref (config.players + config.pickups - 1) in
  List.iter
    (fun (id, st) ->
      Hashtbl.replace t.world id st;
      if id > !max_id then max_id := id;
      match st.kind with
      | Projectile ->
          Hashtbl.replace t.projectiles id
            { ttl = config.projectile_ttl; owner = st.attribute }
      | Player | Pickup -> ())
    items;
  t.next_item <- !max_id + 1;
  t.round <- round;
  t

let round t = t.round

let items t =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun id st acc -> (id, st) :: acc) t.world [])

let item_count t = Hashtbl.length t.world

let apply world = function
  | Updated (id, st) | Created (id, st) -> Hashtbl.replace world id st
  | Destroyed id -> Hashtbl.remove world id

let step t =
  let cfg = t.config in
  let events = ref [] in
  let emit e =
    events := e :: !events;
    apply t.world e
  in
  t.round <- t.round + 1;
  (* Players: move with their activity probability; occasionally pick a
     new direction. *)
  for p = 0 to cfg.players - 1 do
    let st = Hashtbl.find t.world p in
    if Rng.chance t.rng t.activity.(p) then begin
      let velocity =
        if st.velocity = zero || Rng.chance t.rng 0.15 then
          vec_scale (0.5 +. Rng.float t.rng 1.0) (random_direction t.rng)
        else st.velocity
      in
      let position = clamp_to_arena cfg.arena_size (vec_add st.position velocity) in
      emit (Updated (p, { st with position; velocity }));
      (* Walking over a pickup consumes it (it will recharge): a fixed
         item set touched by every player, so per-item update frequency
         grows with the session size — the effect behind the paper's
         §5.2 note that larger sessions have fewer never-obsolete
         messages. *)
      for i = 0 to cfg.pickups - 1 do
        let id = cfg.players + i in
        let pst = Hashtbl.find t.world id in
        if pst.attribute > 0 && ground_dist2 pst.position position < 25.0 then
          emit (Updated (id, { pst with attribute = 0 }))
      done;
      (* Moving players may shoot. *)
      if Rng.chance t.rng cfg.shoot_probability then begin
        let id = t.next_item in
        t.next_item <- t.next_item + 1;
        let dir = random_direction t.rng in
        Hashtbl.replace t.projectiles id { ttl = cfg.projectile_ttl; owner = p };
        emit
          (Created
             ( id,
               {
                 kind = Projectile;
                 position;
                 velocity = vec_scale cfg.projectile_speed dir;
                 attribute = p;
               } ))
      end
    end
  done;
  (* Projectiles fly every round; expire or hit a player. *)
  let dead = ref [] in
  Hashtbl.iter
    (fun id proj ->
      let st = Hashtbl.find t.world id in
      proj.ttl <- proj.ttl - 1;
      let position = vec_add st.position st.velocity in
      let hit =
        let found = ref None in
        for p = 0 to cfg.players - 1 do
          if p <> proj.owner && !found = None then begin
            let pst = Hashtbl.find t.world p in
            if vec_dist2 pst.position position < 4.0 then found := Some p
          end
        done;
        !found
      in
      match hit with
      | Some victim ->
          let vst = Hashtbl.find t.world victim in
          emit (Updated (victim, { vst with attribute = Stdlib.max 0 (vst.attribute - 20) }));
          dead := id :: !dead
      | None ->
          if proj.ttl <= 0 || position.x < 0.0 || position.x > cfg.arena_size then
            dead := id :: !dead
          else emit (Updated (id, { st with position })))
    t.projectiles;
  List.iter
    (fun id ->
      Hashtbl.remove t.projectiles id;
      emit (Destroyed id))
    !dead;
  (* Pickups recharge over time (consumed ones more eagerly). *)
  for i = 0 to cfg.pickups - 1 do
    let id = cfg.players + i in
    let st = Hashtbl.find t.world id in
    let p =
      if st.attribute = 0 then cfg.pickup_respawn_probability *. 10.0
      else cfg.pickup_respawn_probability
    in
    if Rng.chance t.rng p then emit (Updated (id, { st with attribute = 25 + Rng.int t.rng 50 }))
  done;
  List.rev !events

let simulate ?(rounds = 11696) config =
  let t = create config in
  let make_round _ =
    let events = step t in
    let ops =
      List.map
        (fun e ->
          match e with
          | Updated (id, _) -> { Svs_workload.Trace.item = id; kind = Svs_workload.Trace.Update }
          | Created (id, _) -> { Svs_workload.Trace.item = id; kind = Svs_workload.Trace.Create }
          | Destroyed id -> { Svs_workload.Trace.item = id; kind = Svs_workload.Trace.Destroy })
        events
    in
    { Svs_workload.Trace.ops; active = item_count t }
  in
  { Svs_workload.Trace.rounds = Array.init rounds make_round; round_rate = config.round_rate }
