type timer = {
  mutable fire_at : float;
  period : float option;
  mutable action : unit -> bool;
  mutable cancelled : bool;
}

type t = {
  mutable fds : (Unix.file_descr * (unit -> unit)) list;
  mutable timers : timer list;
  mutable running : bool;
}

let create () =
  (* Writing to a peer that died must surface as EPIPE on the write,
     not kill the process. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  { fds = []; timers = []; running = false }

let now _ = Unix.gettimeofday ()

let on_readable t fd callback =
  t.fds <- (fd, callback) :: List.remove_assq fd t.fds

let remove_fd t fd = t.fds <- List.remove_assq fd t.fds

let add_timer t timer = t.timers <- timer :: t.timers

let after t ~delay f =
  let timer =
    {
      fire_at = now t +. delay;
      period = None;
      action =
        (fun () ->
          f ();
          false);
      cancelled = false;
    }
  in
  add_timer t timer;
  timer

let every t ~period f =
  if period <= 0.0 then invalid_arg "Loop.every: period must be positive";
  let timer = { fire_at = now t +. period; period = Some period; action = f; cancelled = false } in
  add_timer t timer;
  timer

let cancel timer = timer.cancelled <- true

let stop t = t.running <- false

let next_deadline t =
  List.fold_left
    (fun acc timer -> if timer.cancelled then acc else Float.min acc timer.fire_at)
    infinity t.timers

let fire_due t =
  let current = now t in
  let due, rest =
    List.partition (fun timer -> (not timer.cancelled) && timer.fire_at <= current) t.timers
  in
  t.timers <- List.filter (fun timer -> not timer.cancelled) rest;
  List.iter
    (fun timer ->
      if not timer.cancelled then begin
        let again = timer.action () in
        match timer.period with
        | Some p when again && not timer.cancelled ->
            timer.fire_at <- now t +. p;
            add_timer t timer
        | Some _ | None -> ()
      end)
    due

let run ?(until = fun () -> false) ?timeout t =
  t.running <- true;
  let deadline = Option.map (fun s -> now t +. s) timeout in
  let expired () = match deadline with Some d -> now t >= d | None -> false in
  while t.running && (not (until ())) && not (expired ()) do
    fire_due t;
    if t.running && (not (until ())) && not (expired ()) then begin
      let wait =
        let till_timer = next_deadline t -. now t in
        let till_deadline =
          match deadline with Some d -> d -. now t | None -> infinity
        in
        Float.max 0.0 (Float.min 0.05 (Float.min till_timer till_deadline))
      in
      if t.fds = [] && t.timers = [] then t.running <- false
      else begin
        let fds = List.map fst t.fds in
        match Unix.select fds [] [] wait with
        | readable, _, _ ->
            List.iter
              (fun fd ->
                match List.assq_opt fd t.fds with
                | Some callback -> callback ()
                | None -> ())
              readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end
    end
  done;
  t.running <- false
