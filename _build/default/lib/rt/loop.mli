(** Minimal [select]-based I/O event loop with wall-clock timers.

    The bridge from the simulation-first design to real execution: the
    protocol automata (SVS, consensus, heartbeats) are all
    transport-agnostic, so running them outside the simulator only
    needs sockets and timers. One loop can host any number of nodes
    (tests run whole groups in a single process). *)

type t

type timer

val create : unit -> t
(** Also ignores [SIGPIPE] process-wide: a peer crashing mid-write must
    surface as an [EPIPE] error, not kill the process. *)

val now : t -> float
(** Monotonic-ish wall clock (Unix.gettimeofday). *)

val on_readable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Register (or replace) the read callback for a descriptor. *)

val remove_fd : t -> Unix.file_descr -> unit

val after : t -> delay:float -> (unit -> unit) -> timer

val every : t -> period:float -> (unit -> bool) -> timer
(** Periodic callback; stops when it returns [false] or on {!cancel}. *)

val cancel : timer -> unit

val stop : t -> unit
(** Make {!run} return after the current iteration. *)

val run : ?until:(unit -> bool) -> ?timeout:float -> t -> unit
(** Dispatch I/O and timers until [until ()] is true (checked each
    iteration), {!stop} is called, [timeout] seconds of wall time
    elapse, or there is nothing left to wait for. *)
