lib/rt/tcp_mesh.mli: Loop Unix
