lib/rt/node.mli: Loop Svs_core Svs_detector Svs_obs Unix
