lib/rt/loop.mli: Unix
