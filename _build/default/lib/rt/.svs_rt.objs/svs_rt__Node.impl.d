lib/rt/node.ml: Hashtbl List Logs Loop Printf Svs_codec Svs_consensus Svs_core Svs_detector Svs_sim Tcp_mesh
