lib/rt/tcp_mesh.ml: Buffer Bytes Char List Loop String Unix
