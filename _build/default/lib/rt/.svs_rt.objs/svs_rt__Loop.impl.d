lib/rt/loop.ml: Float List Option Sys Unix
