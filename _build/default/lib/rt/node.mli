(** A group member running for real: the SVS protocol + heartbeat
    failure detection + Chandra–Toueg consensus over a TCP mesh, driven
    by wall-clock time.

    The same automata that run under the simulator are reused verbatim
    (they are transport-agnostic); their timers live in a private
    {!Svs_sim.Engine} that the I/O loop advances to wall-clock time.

    Deliveries are pulled with {!deliver} — the paper's down-call
    interface (§3.2): messages the application has not consumed yet
    stay in the protocol buffers where they remain purgeable. Suspicion
    (missed heartbeats) triggers a view change automatically, like the
    simulated {!Svs_core.Group} stack. *)

type 'p t

type config = {
  semantic : bool;
  heartbeat : Svs_detector.Heartbeat.config;
  stability_period : float option;
}

val default_config : config
(** Semantic purging on, 100 ms heartbeats (350 ms initial timeout),
    stability gossip every second. *)

val create :
  Loop.t ->
  me:int ->
  listen_fd:Unix.file_descr ->
  peers:(int * Unix.sockaddr) list ->
  payload_codec:'p Svs_core.Wire_codec.payload_codec ->
  ?config:config ->
  ?on_deliverable:(unit -> unit) ->
  unit ->
  'p t
(** [peers] must list every initial member (including [me], whose
    address entry is ignored for dialing). The initial view is the set
    of peer ids. [on_deliverable] is a hint fired when new messages
    became deliverable. *)

val deliver : 'p t -> 'p Svs_core.Types.delivery option
(** Pull the next delivery (down-call interface). *)

val deliver_all : 'p t -> 'p Svs_core.Types.delivery list

val pending : 'p t -> int
(** Data messages waiting in the delivery queue. *)

val id : 'p t -> int

val view : 'p t -> Svs_core.View.t

val is_member : 'p t -> bool

val multicast :
  'p t ->
  ?ann:Svs_obs.Annotation.t ->
  'p ->
  ('p Svs_core.Types.data, [ `Blocked | `Not_member ]) result

val purged : 'p t -> int

val pending_to : 'p t -> dst:int -> int
(** Outbound bytes buffered towards a peer (sender-side buffer). *)

val shutdown : 'p t -> unit
(** Close all sockets and stop the node's timers (a crash, from the
    group's point of view). *)
