(* Overload-survival bench: a 3-node SVS group over real loopback TCP
   in which one receiver (the victim) stops reading mid-run while the
   publisher keeps multicasting an obsolescence chain (every message
   directly obsoletes its predecessor) closed-loop against the healthy
   receiver.

   Two series, back to back:

     shed     semantic shedding on (the default): while the victim's
              link is backed up, newly queued frames purge the covered
              suffix of the queue, so the victim's outbound backlog
              stays bounded and the publisher never hits the hard
              watermark — the healthy receiver keeps its full rate
              through the entire pause.

     no-shed  the same policy with shedding disabled: the victim's
              queue grows until the hard watermark, would_block turns
              on, and the admission-controlled publisher stalls — the
              healthy receiver's sustained rate collapses for the rest
              of the pause.

   Reported per series: healthy-receiver msgs/s, peak outbound bytes
   queued towards the victim, frames shed, slow-member reports, and
   the fraction of publisher ticks spent blocked. The JSON payload
   (BENCH_overload.json) carries the two acceptance booleans the CI
   smoke greps for:

     shed_under_budget    peak victim backlog with shedding stayed
                          under the hard watermark
     noshed_over_budget   peak victim backlog without shedding reached
                          the hard watermark (the stall)

   The detector runs with a timeout longer than the run so the paused
   victim (which still *sends* heartbeats but receives nothing) cannot
   suspect its healthy peers mid-bench; slow-member escalation is
   configured to report but not evict. The evict path is covered by
   the runtime tests.

   Usage: overload [--smoke] [--duration S] [--json FILE] *)

module Loop = Svs_rt.Loop
module Node = Svs_rt.Node
module Tcp_mesh = Svs_rt.Tcp_mesh
module Types = Svs_core.Types
module Wire_codec = Svs_core.Wire_codec
module Annotation = Svs_obs.Annotation
module Kenum_stream = Svs_obs.Kenum_stream
module Metrics = Svs_telemetry.Metrics

let loopback = Unix.inet_addr_loopback

let n_nodes = 3

let publisher = 0

let healthy = 1

let victim = 2

(* Long enough that the wedged victim never suspects its peers. *)
let quiet_detector =
  {
    Svs_detector.Heartbeat.period = 0.1;
    initial_timeout = 120.0;
    timeout_increment = 1.0;
    max_timeout = 240.0;
  }

type series = {
  label : string;
  healthy_msgs_per_s : float;
  published : int;
  peak_victim_pending : int;
  shed_frames : int;
  slow_reports : int;
  blocked_fraction : float;
  victim_delivered : int;
}

(* Watermarks sized to the bench's pause, not a production link: tight
   enough that a wedged receiver crosses them within a smoke run's
   window. *)
let bench_backpressure ~shed =
  {
    Tcp_mesh.default_backpressure with
    soft = 32 * 1024;
    hard = 256 * 1024;
    resume = 8 * 1024;
    shed;
  }

let run_series ~shed ~duration ~pause_for ~rate ~data_root =
  let loop = Loop.create () in
  let label = if shed then "shed" else "no-shed" in
  let listeners =
    List.init n_nodes (fun i ->
        let fd, addr = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
        (i, fd, addr))
  in
  let peers = List.map (fun (i, _, addr) -> (i, addr)) listeners in
  let metrics = Metrics.create () in
  let backpressure = bench_backpressure ~shed in
  let config =
    {
      Node.default_config with
      heartbeat = quiet_detector;
      stability_period = Some 0.5;
      metrics = Some metrics;
      flush_interval = 0.001;
      backpressure;
      slow_member = { Node.report_after = 1.0; evict_after = None };
    }
  in
  let delivered = Array.make n_nodes 0 in
  let nodes =
    Array.of_list
      (List.map
         (fun (i, fd, _) ->
           let data_dir = Filename.concat data_root (Printf.sprintf "%s-n%d" label i) in
           Node.create loop ~me:i ~listen_fd:fd ~peers
             ~payload_codec:Wire_codec.string_codec ~config ~data_dir ())
         listeners)
  in
  Array.iteri
    (fun i node ->
      ignore
        (Loop.every loop ~period:0.0005 (fun () ->
             let rec go () =
               match Node.deliver node with
               | None -> ()
               | Some (Types.Data _) ->
                   delivered.(i) <- delivered.(i) + 1;
                   go ()
               | Some (Types.View_change _) -> go ()
             in
             go ();
             true)
          : Loop.timer))
    nodes;
  Loop.run
    ~until:(fun () ->
      Array.for_all
        (fun node -> List.length (Node.view node).Svs_core.View.members = n_nodes)
        nodes)
    ~timeout:5.0 loop;
  let pub = nodes.(publisher) in
  let published = ref 0 in
  let blocked_ticks = ref 0 in
  let pub_ticks = ref 0 in
  let peak_victim = ref 0 in
  let stream = Kenum_stream.create ~k:8 () in
  let annotation () =
    let direct = if Kenum_stream.next_sn stream > 0 then [ 1 ] else [] in
    Annotation.Kenum (Kenum_stream.push stream ~direct)
  in
  (* ~1 KiB payloads: big enough that the pause backlog dwarfs what
     the kernel's loopback socket buffers can absorb, so the pressure
     shows up in the user-space queues the watermarks bound. The
     sequence number rides in front for debuggability. *)
  let payload seq = Printf.sprintf "%08d|" seq ^ String.make 1015 'x' in
  let t_start = ref 0.0 in
  let deadline = ref infinity in
  ignore
    (Loop.after loop ~delay:0.05 (fun () ->
         t_start := Loop.now loop;
         deadline := !t_start +. duration));
  (* Wedge the victim shortly after measurement starts; un-wedge it
     [pause_for] seconds later, before the deadline, so the drain is
     part of the measured window. *)
  ignore
    (Loop.after loop ~delay:(0.05 +. 0.3) (fun () -> Node.pause_reads nodes.(victim)));
  ignore
    (Loop.after loop
       ~delay:(0.05 +. 0.3 +. pause_for)
       (fun () -> Node.resume_reads nodes.(victim)));
  (* Paced, admission-controlled publisher: a fixed offered load below
     the healthy receiver's capacity but far beyond what the wedged
     victim's kernel buffers can absorb, gated purely on the
     transport's admission surface. With shedding on, the victim's
     link sheds its covered suffix and {!Node.would_block} never
     trips, so the healthy receiver sees the full offered load; with
     shedding off, the victim's queue climbs to the hard watermark and
     the publisher spends the rest of the pause refused. The
     annotation chain is only advanced for messages that were actually
     admitted, so Kenum sequence numbers stay aligned. *)
  let accounted_healthy () = delivered.(healthy) + Node.purged nodes.(healthy) in
  let refused = ref 0.0 in
  let quota = ref 0.0 in
  let last_tick = ref 0.0 in
  ignore
    (Loop.every loop ~period:0.0005 (fun () ->
         (if !t_start > 0.0 && Loop.now loop < !deadline then begin
            incr pub_ticks;
            (* This tick's quota of offered messages. A quota the
               transport refuses is LOST, not deferred — a live
               producer has nothing to defer to, which is exactly why
               pushing the loss down to the transport (where the
               obsolescence relation lives) beats refusing at
               admission. *)
            let due =
              float_of_int rate *. (Loop.now loop -. Float.max !last_tick !t_start)
            in
            last_tick := Loop.now loop;
            if Node.would_block pub then begin
              incr blocked_ticks;
              refused := !refused +. due
            end
            else begin
              quota := !quota +. due;
              let n = ref (int_of_float !quota) in
              quota := !quota -. Float.of_int !n;
              let admitting = ref true in
              while !admitting && !n > 0 do
                if Node.would_block pub then begin
                  refused := !refused +. float_of_int !n;
                  admitting := false
                end
                else
                  match Node.try_multicast pub ~ann:(annotation ()) (payload !published) with
                  | Ok _ ->
                      incr published;
                      decr n
                  | Error _ ->
                      refused := !refused +. float_of_int !n;
                      admitting := false
              done
            end
          end);
         let p = Node.pending_to pub ~dst:victim in
         if p > !peak_victim then peak_victim := p;
         true)
      : Loop.timer);
  Loop.run
    ~until:(fun () ->
      !t_start > 0.0 && Loop.now loop >= !deadline
      && (accounted_healthy () >= !published || Loop.now loop >= !deadline +. 3.0))
    ~timeout:(duration +. 30.0) loop;
  (* The healthy receiver's in-flight tail at the deadline is a few
     flush intervals' worth; the rate over the publish window is the
     honest sustained figure. *)
  let healthy_msgs_per_s = float_of_int (accounted_healthy ()) /. duration in
  let shed_frames = Node.shed_frames pub in
  let slow_reports = Node.slow_reports pub in
  let blocked_fraction =
    let offered = float_of_int !published +. !refused in
    if offered <= 0.0 then 0.0 else !refused /. offered
  in
  let victim_delivered = delivered.(victim) in
  Array.iter Node.shutdown nodes;
  Loop.run ~timeout:0.1 loop;
  {
    label;
    healthy_msgs_per_s;
    published = !published;
    peak_victim_pending = !peak_victim;
    shed_frames;
    slow_reports;
    blocked_fraction;
    victim_delivered;
  }

let pp_series s =
  Printf.printf
    "  %-8s %10.0f healthy msgs/s  peak victim backlog %8d B  shed %6d  reports %2d  \
     blocked %5.1f%%  (%d published, victim delivered %d)\n\
     %!"
    s.label s.healthy_msgs_per_s s.peak_victim_pending s.shed_frames s.slow_reports
    (100.0 *. s.blocked_fraction)
    s.published s.victim_delivered

let series_json s =
  Printf.sprintf
    "    { \"name\": \"%s\", \"healthy_msgs_per_s\": %.1f, \"peak_victim_pending_bytes\": \
     %d, \"shed_frames\": %d, \"slow_reports\": %d, \"blocked_fraction\": %.4f, \
     \"published\": %d, \"victim_delivered\": %d }"
    s.label s.healthy_msgs_per_s s.peak_victim_pending s.shed_frames s.slow_reports
    s.blocked_fraction s.published s.victim_delivered

let write_json ~path ~duration ~pause_for ~hard shed_s noshed_s =
  let oc = open_out path in
  let shed_under = shed_s.peak_victim_pending < hard in
  let noshed_over = noshed_s.peak_victim_pending >= hard in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"overload\",\n\
    \  \"workload\": \"3-node SVS group over loopback TCP; one receiver stops reading for \
     %.1fs mid-run while the publisher multicasts an obsolescence chain closed-loop \
     against the healthy receiver\",\n\
    \  \"duration_s\": %.1f,\n\
    \  \"hard_watermark_bytes\": %d,\n\
    \  \"target\": \"with shedding the victim backlog stays under the hard watermark and \
     the healthy receiver keeps its rate; without shedding the backlog hits the watermark \
     and the admission-controlled publisher stalls\",\n\
    \  \"series\": [\n%s,\n%s\n  ],\n\
    \  \"shed_under_budget\": %b,\n\
    \  \"noshed_over_budget\": %b,\n\
    \  \"healthy_rate_ratio\": %.2f\n\
     }\n"
    pause_for duration hard
    (series_json shed_s)
    (series_json noshed_s)
    shed_under noshed_over
    (if noshed_s.healthy_msgs_per_s > 0.0 then
       shed_s.healthy_msgs_per_s /. noshed_s.healthy_msgs_per_s
     else 0.0);
  close_out oc

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let () =
  let smoke = ref false in
  let duration = ref 8.0 in
  let json = ref None in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--duration" :: v :: rest ->
        duration := float_of_string v;
        parse rest
    | "--json" :: v :: rest ->
        json := Some v;
        parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl args);
  if !smoke then duration := Float.min !duration 3.0;
  (* The victim spends well over half the measured window wedged. *)
  let pause_for = if !smoke then 1.5 else 5.0 in
  (* 25k msgs/s of ~1 KiB = ~25 MB/s offered: well under the healthy
     receiver's loopback capacity, far over what the victim's kernel
     buffers can absorb across the pause. *)
  let rate = 25_000 in
  let data_root = Filename.temp_file "svs-bench-overload" "" in
  Sys.remove data_root;
  Unix.mkdir data_root 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf data_root)
    (fun () ->
      Printf.printf
        "overload: %d nodes, %.1fs per series, victim read-pause %.1fs, offered %d msgs/s%s\n%!"
        n_nodes !duration pause_for rate
        (if !smoke then " (smoke)" else "");
      let shed_s =
        run_series ~shed:true ~duration:!duration ~pause_for ~rate ~data_root
      in
      pp_series shed_s;
      let noshed_s =
        run_series ~shed:false ~duration:!duration ~pause_for ~rate ~data_root
      in
      pp_series noshed_s;
      let hard = (bench_backpressure ~shed:true).Tcp_mesh.hard in
      Printf.printf
        "  shed under hard watermark (%d B): %b   no-shed reached it: %b   healthy-rate \
         ratio: %.2fx\n\
         %!"
        hard
        (shed_s.peak_victim_pending < hard)
        (noshed_s.peak_victim_pending >= hard)
        (if noshed_s.healthy_msgs_per_s > 0.0 then
           shed_s.healthy_msgs_per_s /. noshed_s.healthy_msgs_per_s
         else 0.0);
      match !json with
      | None -> ()
      | Some path ->
          write_json ~path ~duration:!duration ~pause_for ~hard shed_s noshed_s;
          Printf.printf "  wrote %s\n%!" path)
