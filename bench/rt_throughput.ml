(* End-to-end runtime throughput bench: a 3-node SVS group over real
   loopback TCP in one process, driven closed-loop (the publisher keeps
   a bounded number of multicasts outstanding ahead of the slowest
   receiver, so the measured rate is what the stack sustains, not a
   configured publish rate).

   Two series are measured back to back:

     flush-per-send  every multicast is framed and written to the
                     kernel immediately (one write syscall per message
                     per peer)
     batched         outbound frames coalesce per peer per flush tick
                     into one batch frame (the default data path)

   A third, constant series — seed-baseline — records what this same
   driver measured against the pre-overhaul data path (per-message
   string framing, one write per message per peer, a blocking fsync on
   every lease extension), at the default window and a 6 s duration;
   the headline speedup compares the batched series against it. Note
   that flush-per-send is NOT that baseline: it still benefits from
   the zero-copy codec and the WAL group commit, which is why its gap
   to batched understates the overhaul.

   Reported per series: msgs/s sustained at the receivers, p50/p99
   acceptance-to-delivery latency, and allocation cost per message
   (process-wide Gc.minor_words delta / messages published).

   Usage: rt_throughput [--smoke] [--duration S] [--json FILE]
          [--window N] [--payload-items N]

   The JSON payload is the root-level BENCH_rt_throughput.json of the
   perf trajectory (see scripts/bench_rt.sh and `scripts/ci.sh
   bench-smoke`). *)

module Loop = Svs_rt.Loop
module Node = Svs_rt.Node
module Tcp_mesh = Svs_rt.Tcp_mesh
module Types = Svs_core.Types
module Wire_codec = Svs_core.Wire_codec
module Metrics = Svs_telemetry.Metrics

let loopback = Unix.inet_addr_loopback

let n_nodes = 3

let fast_heartbeats =
  {
    Svs_detector.Heartbeat.period = 0.1;
    initial_timeout = 2.0;
    timeout_increment = 0.5;
    max_timeout = 5.0;
  }

type series = {
  label : string;
  msgs_per_s : float;
  published : int;
  p50_ms : float;
  p99_ms : float;
  minor_words_per_msg : float;
  flushes : int;
  wal_syncs : int;
}

(* Pre-overhaul numbers, measured with this driver built against the
   growth seed (commit before this bench existed: Writer+string per
   frame, write-per-message, blocking per-chunk lease fsync) on the
   same host at --window 1024 --duration 6. Best of four runs — the
   conservative baseline for the speedup claim. *)
let seed_baseline =
  {
    label = "seed-baseline";
    msgs_per_s = 34534.0;
    published = 208369;
    p50_ms = 11.72;
    p99_ms = 23.44;
    minor_words_per_msg = 812.0;
    flushes = 0;
    wal_syncs = 3506;
  }

(* One measured run: fresh sockets, fresh nodes, fresh WALs. Returns
   the receiver-side sustained rate and latency percentiles. *)
let run_series ~label ~flush_interval ~duration ~window ~data_root =
  let loop = Loop.create () in
  let listeners =
    List.init n_nodes (fun i ->
        let fd, addr = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
        (i, fd, addr))
  in
  let peers = List.map (fun (i, _, addr) -> (i, addr)) listeners in
  let metrics = Metrics.create () in
  let config =
    {
      Node.default_config with
      heartbeat = fast_heartbeats;
      stability_period = Some 0.5;
      metrics = Some metrics;
      flush_interval;
    }
  in
  let delivered = Array.make n_nodes 0 in
  let nodes =
    Array.of_list
      (List.map
         (fun (i, fd, _) ->
           let data_dir = Filename.concat data_root (Printf.sprintf "%s-n%d" label i) in
           Node.create loop ~me:i ~listen_fd:fd ~peers
             ~payload_codec:Wire_codec.int_codec ~config ~data_dir ())
         listeners)
  in
  Array.iteri
    (fun i node ->
      ignore
        (Loop.every loop ~period:0.0005 (fun () ->
             let rec go () =
               match Node.deliver node with
               | None -> ()
               | Some (Types.Data _) ->
                   delivered.(i) <- delivered.(i) + 1;
                   go ()
               | Some (Types.View_change _) -> go ()
             in
             go ();
             true)
          : Loop.timer))
    nodes;
  (* Let the mesh connect before measuring. *)
  Loop.run
    ~until:(fun () ->
      Array.for_all (fun node -> List.length (Node.view node).Svs_core.View.members = n_nodes) nodes)
    ~timeout:5.0 loop;
  let published = ref 0 in
  let min_remote_delivered () =
    let m = ref max_int in
    for i = 1 to n_nodes - 1 do
      if delivered.(i) < !m then m := delivered.(i)
    done;
    !m
  in
  let t_start = ref 0.0 in
  let deadline = ref infinity in
  let words0 = ref 0.0 in
  ignore
    (Loop.after loop ~delay:0.05 (fun () ->
         t_start := Loop.now loop;
         deadline := !t_start +. duration;
         words0 := Gc.minor_words ()));
  (* Closed-loop publisher: keep at most [window] messages ahead of the
     slowest receiver. *)
  ignore
    (Loop.every loop ~period:0.0005 (fun () ->
         if !t_start > 0.0 && Loop.now loop < !deadline then begin
           let floor = min_remote_delivered () in
           let burst = ref 0 in
           while !published - floor < window && !burst < window do
             incr burst;
             match Node.multicast nodes.(0) !published with
             | Ok _ -> incr published
             | Error _ -> burst := window
           done
         end;
         true)
      : Loop.timer);
  Loop.run
    ~until:(fun () ->
      !t_start > 0.0 && Loop.now loop >= !deadline
      && (min_remote_delivered () >= !published || Loop.now loop >= !deadline +. 5.0))
    ~timeout:(duration +. 30.0) loop;
  let words1 = Gc.minor_words () in
  let elapsed = Loop.now loop -. !t_start in
  let drained = min_remote_delivered () in
  let msgs_per_s = float_of_int drained /. elapsed in
  (* Worst-case latency percentiles across the remote receivers. *)
  let pct q =
    let worst = ref 0.0 in
    for i = 1 to n_nodes - 1 do
      let h = Node.delivery_latency nodes.(i) in
      if Metrics.Histogram.count h > 0 then begin
        let v = Metrics.Histogram.quantile h q in
        if v > !worst then worst := v
      end
    done;
    !worst *. 1000.0
  in
  let p50_ms = pct 0.5 and p99_ms = pct 0.99 in
  let minor_words_per_msg =
    if !published = 0 then 0.0 else (words1 -. !words0) /. float_of_int !published
  in
  let flushes = Metrics.sum_counters metrics "tcp_flushes_total" in
  let wal_syncs = Metrics.sum_counters metrics "wal_syncs_total" in
  Array.iter Node.shutdown nodes;
  Loop.run ~timeout:0.1 loop;
  {
    label;
    msgs_per_s;
    published = !published;
    p50_ms;
    p99_ms;
    minor_words_per_msg;
    flushes;
    wal_syncs;
  }

let pp_series s =
  Printf.printf
    "  %-16s %10.0f msgs/s  p50 %6.2f ms  p99 %6.2f ms  %8.1f minor words/msg  (%d published, %d flushes, %d wal syncs)\n%!"
    s.label s.msgs_per_s s.p50_ms s.p99_ms s.minor_words_per_msg s.published s.flushes
    s.wal_syncs

let series_json s =
  Printf.sprintf
    "    { \"name\": \"%s\", \"msgs_per_s\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
     \"minor_words_per_msg\": %.1f, \"published\": %d, \"tcp_flushes\": %d, \"wal_syncs\": %d }"
    s.label s.msgs_per_s s.p50_ms s.p99_ms s.minor_words_per_msg s.published s.flushes
    s.wal_syncs

let write_json ~path ~duration all =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"rt_throughput\",\n\
    \  \"workload\": \"3-node SVS group over loopback TCP, closed-loop small int multicasts \
     (durable WAL on), receiver-side sustained rate\",\n\
    \  \"duration_s\": %.1f,\n\
    \  \"target\": \"batched >= 2x seed-baseline msgs/s; p99 no worse at default flush \
     interval\",\n\
    \  \"baseline_note\": \"seed-baseline is constant: measured with this driver against the \
     pre-overhaul data path (per-message framing, write per message, blocking lease fsync) at \
     window 1024, 6s; best of four runs\",\n\
    \  \"series\": [\n%s\n  ]%s\n}\n"
    duration
    (String.concat ",\n" (List.map series_json all))
    (match all with
    | [ seed; base; opt ] when seed.msgs_per_s > 0.0 && base.msgs_per_s > 0.0 ->
        Printf.sprintf ",\n  \"speedup\": %.2f,\n  \"speedup_vs_flush_per_send\": %.2f"
          (opt.msgs_per_s /. seed.msgs_per_s)
          (opt.msgs_per_s /. base.msgs_per_s)
    | _ -> "");
  close_out oc

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let () =
  let smoke = ref false in
  let duration = ref 4.0 in
  let json = ref None in
  let window = ref 1024 in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--duration" :: v :: rest ->
        duration := float_of_string v;
        parse rest
    | "--json" :: v :: rest ->
        json := Some v;
        parse rest
    | "--window" :: v :: rest ->
        window := int_of_string v;
        parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl args);
  if !smoke then duration := Float.min !duration 1.0;
  let data_root = Filename.temp_file "svs-bench-rt" "" in
  Sys.remove data_root;
  Unix.mkdir data_root 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf data_root)
    (fun () ->
      Printf.printf "rt_throughput: %d nodes, %.1fs per series, window %d%s\n%!" n_nodes
        !duration !window
        (if !smoke then " (smoke)" else "");
      pp_series seed_baseline;
      let base =
        run_series ~label:"flush-per-send" ~flush_interval:0.0 ~duration:!duration
          ~window:!window ~data_root
      in
      pp_series base;
      let opt =
        run_series ~label:"batched" ~flush_interval:0.001 ~duration:!duration
          ~window:!window ~data_root
      in
      pp_series opt;
      Printf.printf "  speedup vs seed-baseline: %.2fx  (vs flush-per-send: %.2fx)\n%!"
        (opt.msgs_per_s /. seed_baseline.msgs_per_s)
        (opt.msgs_per_s /. base.msgs_per_s);
      match !json with
      | None -> ()
      | Some path ->
          write_json ~path ~duration:!duration [ seed_baseline; base; opt ];
          Printf.printf "  wrote %s\n%!" path)
