(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (§5), then micro-benchmarks the core data
   structures with Bechamel.

   Sections:
     T1   — §5.2 session statistics (paper vs measured)
     F3a  — Figure 3(a) item-modification frequency by rank
     F3b  — Figure 3(b) obsolescence distance distribution
     F4a  — Figure 4(a) producer idle % vs consumer rate
     F4b  — Figure 4(b) buffer occupancy vs consumer rate
     F5a  — Figure 5(a) threshold rate vs buffer size
     F5b  — Figure 5(b) tolerated perturbation vs buffer size
     V1   — view-change flush cost and latency (full stack)
     A1   — obsolescence-encoding ablation
     A2   — full-protocol validation of F4a's shape
     A3/A4 — §2.2 design alternatives under perturbations
     A5   — reconfiguration as a last resort (overflow exclusion)
     A6   — player-count scaling of the arena workload
     CLAIMS — every qualitative claim re-validated on this run
     MICRO — Bechamel micro-benchmarks *)

module E = Svs_experiments
module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace

let ppf = Format.std_formatter

let section name =
  Format.fprintf ppf "@.======================================================================@.";
  Format.fprintf ppf "== %s@." name;
  Format.fprintf ppf "======================================================================@."

let spec = E.Spec.default

let run_reproduction () =
  section "T1: session statistics (paper §5.2)";
  E.Table_stats.print ~spec ppf ();
  section "F3a/F3b: characterisation of access to application state (Figure 3)";
  E.Fig3.print ~spec ppf ();
  section "F4a/F4b: impact of a slow consumer (Figure 4)";
  E.Fig4.print ~spec ppf ();
  section "F5a/F5b: impact of purging vs buffer size (Figure 5)";
  E.Fig5.print ~spec ppf ();
  section "V1: view-change cost under load (full protocol stack)";
  E.View_latency.print ~spec ppf ();
  section "A1: obsolescence-representation ablation";
  E.Ablation.print ~spec ppf ();
  section "A2: full-protocol validation of Figure 4(a)";
  E.Protocol_pipeline.print ~spec ppf ();
  section "A3/A4: design alternatives of §2.2 under perturbations";
  E.Alternatives.print ~spec ppf ();
  section "A5: reconfiguration as a last resort";
  E.Last_resort.print ~spec ppf ();
  section "A6: player-count scaling";
  E.Scaling.print ppf ();
  section "CLAIMS: machine-checked reproduction verdicts";
  E.Claims.print ~spec ppf ()

(* --- Bechamel micro-benchmarks of the hot data structures --- *)

open Bechamel
open Toolkit

(* Each workload is a plain [unit -> unit] closure so the smoke mode
   ([--smoke]) can exercise it directly, without Bechamel's timing
   machinery. *)

let bitvec_compose () =
  let src = Svs_obs.Bitvec.create ~k:64 in
  Svs_obs.Bitvec.set src 1;
  Svs_obs.Bitvec.set src 17;
  Svs_obs.Bitvec.set src 63;
  let into = Svs_obs.Bitvec.create ~k:64 in
  Svs_obs.Bitvec.or_shifted ~into src ~shift:5

let kenum_push =
  let stream = Svs_obs.Kenum_stream.create ~k:64 () in
  fun () -> ignore (Svs_obs.Kenum_stream.push stream ~direct:[ 1 ])

let heap_churn () =
  let h = Svs_sim.Heap.create ~leq:(fun (a : int) b -> a <= b) () in
  for i = 0 to 63 do
    Svs_sim.Heap.add h ((i * 7) mod 64)
  done;
  for _ = 0 to 63 do
    ignore (Svs_sim.Heap.pop h)
  done

(* The pipeline replay tallies into a shared registry; its accumulated
   counters are reported after the benchmarks as a registry read-out. *)
let micro_registry = Metrics.create ()

let pipeline_insert =
  let messages = lazy (E.Spec.messages ~buffer:15 spec) in
  fun () ->
    ignore
      (E.Pipeline.run ~metrics:micro_registry ~messages:(Lazy.force messages)
         { E.Pipeline.buffer = 15; consumer_rate = 50.0; mode = E.Pipeline.Semantic })

(* Nop-vs-instrumented protocol hot path: the telemetry design goal is
   that the default [Trace.nop] tracer adds nothing measurable to
   multicast + receive + deliver (one load and a branch per guard, no
   event allocation), and that registry instruments cost the same as
   the detached ones. Compare the two lines below. *)
let proto_hot_path ~tracer ~metrics =
  let create me =
    Svs_core.Protocol.create ~me
      ~initial_view:(Svs_core.View.initial ~members:[ 0; 1 ])
      ~tracer ?metrics
      ~suspects:(fun _ -> false)
      ()
  in
  let a = create 0 and b = create 1 in
  let i = ref 0 in
  fun () ->
    incr i;
    (match Svs_core.Protocol.multicast a ~ann:(Svs_obs.Annotation.Tag (!i land 15)) !i with
    | Ok _ -> ()
    | Error _ -> assert false);
    List.iter
      (function
        | Svs_core.Types.Send { dst; wire } when dst = 1 ->
            Svs_core.Protocol.receive b ~src:0 wire
        | _ -> ())
      (Svs_core.Protocol.take_outputs a);
    ignore (Svs_core.Protocol.deliver a);
    ignore (Svs_core.Protocol.deliver b);
    if Trace.enabled tracer && !i land 1023 = 0 then Trace.clear tracer

let micro_workloads =
  [
    ("bitvec: or_shifted compose (k=64)", bitvec_compose);
    ("kenum-stream: push with one predecessor", kenum_push);
    ("heap: 64 pushes + 64 pops", heap_churn);
    ("pipeline: full semantic replay (16k msgs)", pipeline_insert);
    ( "protocol: multicast+receive+deliver (telemetry off)",
      proto_hot_path ~tracer:Trace.nop ~metrics:None );
    ( "protocol: multicast+receive+deliver (traced+metered)",
      proto_hot_path ~tracer:(Trace.memory ()) ~metrics:(Some (Metrics.create ())) );
  ]

(* One Bechamel run of a single closure, reduced to its OLS ns/run
   estimate. *)
let estimate_ns name fn =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let test = Test.make_grouped ~name:"svs" [ Test.make ~name (Staged.stage fn) ] in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let ns = ref None in
  Hashtbl.iter
    (fun _ result ->
      match Analyze.OLS.estimates result with
      | Some [ v ] -> ns := Some v
      | Some _ | None -> ())
    results;
  !ns

let pp_estimate name = function
  | Some ns when ns > 1_000_000.0 ->
      Format.fprintf ppf "%-52s %12.2f ms/run@." name (ns /. 1e6)
  | Some ns -> Format.fprintf ppf "%-52s %12.1f ns/run@." name ns
  | None -> Format.fprintf ppf "%-52s (no estimate)@." name

let run_micro () =
  section "MICRO: Bechamel micro-benchmarks";
  List.iter (fun (name, fn) -> pp_estimate name (estimate_ns name fn)) micro_workloads;
  Format.fprintf ppf "pipeline registry read-out (accumulated over the runs above):@.";
  Format.fprintf ppf "  %a@." Metrics.pp_line micro_registry

(* --- Purge-at-insert scaling: pairwise sweep vs indexed probes --- *)

module Pd = Svs_core.Purge_diff

let purge_depths = [ 100; 1_000; 10_000 ]

(* Steady state at [depth]: the queue holds one message per tag
   lineage; each measured insert carries the next sequence number of an
   existing lineage (tag = sn mod depth), so it purges exactly the one
   entry it supersedes and the queue depth is invariant across
   iterations. The pairwise engine sweeps the whole queue per insert;
   the indexed engine does two hash probes. *)
let purge_workload (module En : Pd.ENGINE) depth =
  let q = En.create () in
  let sn = ref 0 in
  let insert_next () =
    let id = Svs_obs.Msg_id.make ~sender:0 ~sn:!sn in
    ignore
      (En.insert q { Pd.view = 0; id; ann = Svs_obs.Annotation.Tag (!sn mod depth) }
        : Svs_obs.Msg_id.t list);
    incr sn
  in
  for _ = 1 to depth do
    insert_next ()
  done;
  insert_next

(* Hand-rolled writer: the shape is fixed and the toolchain has no JSON
   library to lean on. *)
let write_purge_json ~path ~pairwise ~indexed =
  let oc = open_out path in
  let nums fmt l = String.concat ", " (List.map fmt l) in
  let ns v = if Float.is_nan v then "null" else Printf.sprintf "%.1f" v in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"purge_at_insert\",\n\
    \  \"unit\": \"ns/op\",\n\
    \  \"workload\": \"steady-state Tag purge: one queued entry per lineage, each insert \
     purges exactly one\",\n\
    \  \"depths\": [%s],\n\
    \  \"series\": [\n\
    \    { \"name\": \"pairwise\", \"ns_per_op\": [%s] },\n\
    \    { \"name\": \"indexed\", \"ns_per_op\": [%s] }\n\
    \  ]\n\
     }\n"
    (nums string_of_int purge_depths)
    (nums ns pairwise) (nums ns indexed);
  close_out oc

let run_purge ~measure =
  section "PURGE: purge-at-insert scaling (pairwise vs indexed)";
  let series name (module En : Pd.ENGINE) =
    List.map
      (fun depth ->
        measure (Printf.sprintf "purge insert (%s, depth=%d)" name depth)
          (purge_workload (module En) depth))
      purge_depths
  in
  let pairwise = series "pairwise" (module Pd.Reference) in
  let indexed = series "indexed" (module Pd.Indexed) in
  List.iteri
    (fun i depth ->
      Format.fprintf ppf "  depth %6d: pairwise %10.1f ns/op, indexed %10.1f ns/op@." depth
        (List.nth pairwise i) (List.nth indexed i))
    purge_depths;
  write_purge_json ~path:"BENCH_purge.json" ~pairwise ~indexed;
  Format.fprintf ppf "  wrote BENCH_purge.json@."

(* Crude self-scaling timer for smoke mode: no statistics, no gates —
   just enough iterations for Sys.time's coarse clock to register. *)
let crude_ns_per_op fn =
  let rec go iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      fn ()
    done;
    let dt = Sys.time () -. t0 in
    if dt < 0.05 && iters < 1_000_000 then go (iters * 4)
    else dt *. 1e9 /. float_of_int iters
  in
  go 50

(* Smoke mode: run every micro workload a few times to prove it
   executes, then emit BENCH_purge.json from crude timings. No timing
   assertions anywhere — this is a CI liveness check, not a perf
   gate. *)
let run_smoke () =
  section "SMOKE: micro-benchmark workloads (exercised, not timed)";
  List.iter
    (fun (name, fn) ->
      for _ = 1 to 3 do
        fn ()
      done;
      Format.fprintf ppf "  %-52s ok@." name)
    micro_workloads;
  run_purge ~measure:(fun _name fn -> crude_ns_per_op fn);
  section "done (smoke)"

let () =
  if Array.exists (String.equal "--smoke") Sys.argv then begin
    Format.fprintf ppf "Semantic View Synchrony (DSN 2002) — bench smoke mode@.";
    run_smoke ()
  end
  else begin
    Format.fprintf ppf "Semantic View Synchrony (DSN 2002) — reproduction harness@.";
    Format.fprintf ppf "workload: %a, seed %d, %d rounds@." E.Spec.pp_workload
      spec.E.Spec.workload spec.E.Spec.seed spec.E.Spec.rounds;
    run_reproduction ();
    run_micro ();
    run_purge ~measure:(fun name fn ->
        match estimate_ns name fn with Some v -> v | None -> Float.nan);
    section "done"
  end
