(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (§5), then micro-benchmarks the core data
   structures with Bechamel.

   Sections:
     T1   — §5.2 session statistics (paper vs measured)
     F3a  — Figure 3(a) item-modification frequency by rank
     F3b  — Figure 3(b) obsolescence distance distribution
     F4a  — Figure 4(a) producer idle % vs consumer rate
     F4b  — Figure 4(b) buffer occupancy vs consumer rate
     F5a  — Figure 5(a) threshold rate vs buffer size
     F5b  — Figure 5(b) tolerated perturbation vs buffer size
     V1   — view-change flush cost and latency (full stack)
     A1   — obsolescence-encoding ablation
     A2   — full-protocol validation of F4a's shape
     A3/A4 — §2.2 design alternatives under perturbations
     A5   — reconfiguration as a last resort (overflow exclusion)
     A6   — player-count scaling of the arena workload
     CLAIMS — every qualitative claim re-validated on this run
     MICRO — Bechamel micro-benchmarks *)

module E = Svs_experiments
module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace

let ppf = Format.std_formatter

let section name =
  Format.fprintf ppf "@.======================================================================@.";
  Format.fprintf ppf "== %s@." name;
  Format.fprintf ppf "======================================================================@."

let spec = E.Spec.default

let run_reproduction () =
  section "T1: session statistics (paper §5.2)";
  E.Table_stats.print ~spec ppf ();
  section "F3a/F3b: characterisation of access to application state (Figure 3)";
  E.Fig3.print ~spec ppf ();
  section "F4a/F4b: impact of a slow consumer (Figure 4)";
  E.Fig4.print ~spec ppf ();
  section "F5a/F5b: impact of purging vs buffer size (Figure 5)";
  E.Fig5.print ~spec ppf ();
  section "V1: view-change cost under load (full protocol stack)";
  E.View_latency.print ~spec ppf ();
  section "A1: obsolescence-representation ablation";
  E.Ablation.print ~spec ppf ();
  section "A2: full-protocol validation of Figure 4(a)";
  E.Protocol_pipeline.print ~spec ppf ();
  section "A3/A4: design alternatives of §2.2 under perturbations";
  E.Alternatives.print ~spec ppf ();
  section "A5: reconfiguration as a last resort";
  E.Last_resort.print ~spec ppf ();
  section "A6: player-count scaling";
  E.Scaling.print ppf ();
  section "CLAIMS: machine-checked reproduction verdicts";
  E.Claims.print ~spec ppf ()

(* --- Bechamel micro-benchmarks of the hot data structures --- *)

open Bechamel
open Toolkit

let test_bitvec_compose =
  Test.make ~name:"bitvec: or_shifted compose (k=64)"
    (Staged.stage (fun () ->
         let src = Svs_obs.Bitvec.create ~k:64 in
         Svs_obs.Bitvec.set src 1;
         Svs_obs.Bitvec.set src 17;
         Svs_obs.Bitvec.set src 63;
         let into = Svs_obs.Bitvec.create ~k:64 in
         Svs_obs.Bitvec.or_shifted ~into src ~shift:5))

let test_kenum_push =
  let stream = Svs_obs.Kenum_stream.create ~k:64 () in
  Test.make ~name:"kenum-stream: push with one predecessor"
    (Staged.stage (fun () -> ignore (Svs_obs.Kenum_stream.push stream ~direct:[ 1 ])))

let test_heap_churn =
  Test.make ~name:"heap: 64 pushes + 64 pops"
    (Staged.stage (fun () ->
         let h = Svs_sim.Heap.create ~leq:(fun (a : int) b -> a <= b) () in
         for i = 0 to 63 do
           Svs_sim.Heap.add h ((i * 7) mod 64)
         done;
         for _ = 0 to 63 do
           ignore (Svs_sim.Heap.pop h)
         done))

(* The pipeline replay tallies into a shared registry; its accumulated
   counters are reported after the benchmarks as a registry read-out. *)
let micro_registry = Metrics.create ()

let test_pipeline_insert =
  let messages = E.Spec.messages ~buffer:15 spec in
  Test.make ~name:"pipeline: full semantic replay (16k msgs)"
    (Staged.stage (fun () ->
         ignore
           (E.Pipeline.run ~metrics:micro_registry ~messages
              { E.Pipeline.buffer = 15; consumer_rate = 50.0; mode = E.Pipeline.Semantic })))

(* Nop-vs-instrumented protocol hot path: the telemetry design goal is
   that the default [Trace.nop] tracer adds nothing measurable to
   multicast + receive + deliver (one load and a branch per guard, no
   event allocation), and that registry instruments cost the same as
   the detached ones. Compare the two lines below. *)
let proto_hot_path ~tracer ~metrics =
  let create me =
    Svs_core.Protocol.create ~me
      ~initial_view:(Svs_core.View.initial ~members:[ 0; 1 ])
      ~tracer ?metrics
      ~suspects:(fun _ -> false)
      ()
  in
  let a = create 0 and b = create 1 in
  let i = ref 0 in
  fun () ->
    incr i;
    (match Svs_core.Protocol.multicast a ~ann:(Svs_obs.Annotation.Tag (!i land 15)) !i with
    | Ok _ -> ()
    | Error _ -> assert false);
    List.iter
      (function
        | Svs_core.Types.Send { dst; wire } when dst = 1 ->
            Svs_core.Protocol.receive b ~src:0 wire
        | _ -> ())
      (Svs_core.Protocol.take_outputs a);
    ignore (Svs_core.Protocol.deliver a);
    ignore (Svs_core.Protocol.deliver b);
    if Trace.enabled tracer && !i land 1023 = 0 then Trace.clear tracer

let test_proto_nop =
  Test.make ~name:"protocol: multicast+receive+deliver (telemetry off)"
    (Staged.stage (proto_hot_path ~tracer:Trace.nop ~metrics:None))

let test_proto_traced =
  Test.make ~name:"protocol: multicast+receive+deliver (traced+metered)"
    (Staged.stage
       (proto_hot_path ~tracer:(Trace.memory ()) ~metrics:(Some (Metrics.create ()))))

let run_micro () =
  section "MICRO: Bechamel micro-benchmarks";
  let tests =
    [
      test_bitvec_compose;
      test_kenum_push;
      test_heap_churn;
      test_pipeline_insert;
      test_proto_nop;
      test_proto_traced;
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ ns ] ->
            if ns > 1_000_000.0 then
              Format.fprintf ppf "%-45s %12.2f ms/run@." name (ns /. 1e6)
            else Format.fprintf ppf "%-45s %12.1f ns/run@." name ns
        | Some _ | None -> Format.fprintf ppf "%-45s (no estimate)@." name)
      results
  in
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"svs" [ t ])) tests;
  Format.fprintf ppf "pipeline registry read-out (accumulated over the runs above):@.";
  Format.fprintf ppf "  %a@." Metrics.pp_line micro_registry

let () =
  Format.fprintf ppf "Semantic View Synchrony (DSN 2002) — reproduction harness@.";
  Format.fprintf ppf "workload: %a, seed %d, %d rounds@." E.Spec.pp_workload
    spec.E.Spec.workload spec.E.Spec.seed spec.E.Spec.rounds;
  run_reproduction ();
  run_micro ();
  section "done"
